//! Minimal JSON support for the workspace.
//!
//! The build environment cannot fetch `serde`/`serde_json`, so this
//! crate provides the small surface the repo needs: a [`Value`] tree
//! with deterministic (alphabetical) object key order, serialization
//! to compact JSON text, and a [`ToJson`] trait rows and reports
//! implement to describe themselves.
//!
//! Formatting matches `serde_json` where the bench suite depends on
//! it: floats render via Rust's shortest roundtrip formatting (`1.5`,
//! and whole floats keep a trailing `.0` — `2.0`), strings are
//! escaped per RFC 8259.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

mod parse;

pub use parse::ParseError;

/// A JSON value. Objects use [`BTreeMap`] so key order is always
/// alphabetical, which keeps CSV headers and JSON output stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (serialized with `{:?}`, so `2.0` keeps its `.0`).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with alphabetically ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Inserts `key` into an object value; panics on non-objects.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        match self {
            Value::Object(map) => {
                map.insert(key.into(), value.into());
            }
            other => panic!("insert on non-object JSON value: {other:?}"), // lint:allow(panic-safety): documented API contract — inserting into a non-object is a programmer error
        }
    }

    /// The object's key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as it should appear in a CSV cell: like JSON,
    /// but strings are unquoted.
    pub fn csv_cell(&self) -> String {
        match self {
            Value::String(s) => s.clone(),
            other => other.to_string(),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Float(v as f64)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps the `.0` on whole floats (serde_json
                    // behaviour the bench CSV test depends on).
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(s, &mut buf);
                f.write_str(&buf)
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Conversion into a JSON [`Value`]; the workspace's replacement for
/// `serde::Serialize` on result-row structs.
pub trait ToJson {
    /// Describes `self` as a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// use rpdbscan_json::{impl_to_json, ToJson};
///
/// struct Row {
///     dataset: String,
///     clusters: usize,
/// }
/// impl_to_json!(Row { dataset, clusters });
///
/// let row = Row { dataset: "x".into(), clusters: 2 };
/// assert_eq!(row.to_json().to_string(), r#"{"clusters":2,"dataset":"x"}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Value {
                let mut obj = $crate::Value::object();
                $(obj.insert(stringify!($field), self.$field.clone());)+
                obj
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_keep_trailing_zero() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::Float(0.1).to_string(), "0.1");
        assert_eq!(Value::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn object_keys_are_alphabetical() {
        let mut obj = Value::object();
        obj.insert("zeta", 1i64);
        obj.insert("alpha", 2i64);
        obj.insert("mid", "x");
        assert_eq!(obj.to_string(), r#"{"alpha":2,"mid":"x","zeta":1}"#);
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\\c\nd".to_string());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn csv_cell_unquotes_strings() {
        assert_eq!(Value::String("plain".into()).csv_cell(), "plain");
        assert_eq!(Value::Float(2.0).csv_cell(), "2.0");
        assert_eq!(Value::Int(10).csv_cell(), "10");
    }

    #[test]
    fn impl_to_json_macro_round_trip() {
        struct Row {
            b: f64,
            a: usize,
        }
        impl_to_json!(Row { b, a });
        let row = Row { b: 2.0, a: 7 };
        assert_eq!(row.to_json().to_string(), r#"{"a":7,"b":2.0}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let mut inner = Value::object();
        inner.insert("k", Value::Array(vec![Value::Int(1), Value::Null]));
        assert_eq!(inner.to_string(), r#"{"k":[1,null]}"#);
    }
}
