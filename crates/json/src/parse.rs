//! A strict RFC 8259 parser for [`Value`], closing the round trip with
//! the serializer: `xtask lint --baseline` reads a previous `LINT.json`
//! back, and the bench tooling can diff its own reports. Numbers
//! without a fraction or exponent parse as [`Value::Int`]; everything
//! else float — the same split the serializer writes.

use crate::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Why a document failed to parse, with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Nesting deeper than this is rejected rather than risking the stack.
const MAX_DEPTH: usize = 128;

impl Value {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(src: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next escape/quote.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.hex4()?;
        // Surrogate pair: a high surrogate must be followed by `\u` and
        // a low surrogate.
        let code = if (0xD800..0xDC00).contains(&first) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4()?;
                if !(0xDC00..0xE000).contains(&second) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
            } else {
                return Err(self.err("unpaired high surrogate"));
            }
        } else if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("unpaired low surrogate"));
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("escape is not a scalar value"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        // Leading zeros are invalid JSON (`01`), a lone `0` is fine.
        if int_digits > 1 && self.bytes[start] == b'0'
            || int_digits > 1 && self.bytes[start] == b'-' && self.bytes[start + 1] == b'0'
        {
            return Err(self.err("leading zero in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad float `{text}`: {e}")))
        } else {
            // Integers wider than i64 degrade to float rather than fail.
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|e| self.err(format!("bad number `{text}`: {e}"))),
            }
        }
    }

    fn digits(&mut self) -> Result<usize, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a digit"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_serializer_output() {
        let mut obj = Value::object();
        obj.insert("pi", 3.5f64);
        obj.insert("n", 42i64);
        obj.insert("s", "a\"b\\c\nd");
        obj.insert("flag", true);
        obj.insert("none", Value::Null);
        obj.insert("arr", vec![1i64, 2, 3]);
        let text = obj.to_string();
        assert_eq!(Value::parse(&text), Ok(obj));
    }

    #[test]
    fn int_float_split_matches_serializer() {
        assert_eq!(Value::parse("7"), Ok(Value::Int(7)));
        assert_eq!(Value::parse("-7"), Ok(Value::Int(-7)));
        assert_eq!(Value::parse("7.0"), Ok(Value::Float(7.0)));
        assert_eq!(Value::parse("1e3"), Ok(Value::Float(1000.0)));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Value::parse("\"\\u0041\\u00e9\""),
            Ok(Value::String("Aé".to_string()))
        );
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\""),
            Ok(Value::String("😀".to_string()))
        );
        assert!(Value::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "01", "1 2", "nul", "\"abc", "{'a':1}",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerant() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").expect("parses");
        assert_eq!(v.to_string(), r#"{"a":[1,2],"b":null}"#);
    }
}
