//! Property-based tests for the baseline algorithms.

use proptest::prelude::*;
use rpdbscan_baselines::region::{split_regions, SplitStrategy};
use rpdbscan_baselines::{exact_dbscan, rho_approx_dbscan, RegionDbscan, RegionParams};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::{dist, Dataset};
use rpdbscan_metrics::{rand_index, NoisePolicy};

fn dataset_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact DBSCAN's core flags match the definition: |N_eps(p)| >= minPts.
    #[test]
    fn exact_core_flags_match_definition(
        pts in dataset_strategy(),
        eps in 0.3f64..4.0,
        min_pts in 1usize..8,
    ) {
        let data = Dataset::from_rows(2, &pts).unwrap();
        let out = exact_dbscan(&data, eps, min_pts);
        for i in 0..pts.len() {
            let n = pts.iter().filter(|q| dist(&pts[i], q) <= eps).count();
            prop_assert_eq!(out.core[i], n >= min_pts, "point {}", i);
        }
    }

    /// Exact DBSCAN labels: core points are clustered, noise points have
    /// no core point within eps.
    #[test]
    fn exact_labels_consistent(
        pts in dataset_strategy(),
        eps in 0.3f64..4.0,
        min_pts in 1usize..8,
    ) {
        let data = Dataset::from_rows(2, &pts).unwrap();
        let out = exact_dbscan(&data, eps, min_pts);
        let labels = out.clustering.labels();
        for i in 0..pts.len() {
            if out.core[i] {
                prop_assert!(labels[i].is_some(), "core point {} unlabeled", i);
            }
            if labels[i].is_none() {
                // No core point within eps may exist for a noise point.
                for j in 0..pts.len() {
                    if out.core[j] {
                        prop_assert!(
                            dist(&pts[i], &pts[j]) > eps,
                            "noise point {} within eps of core {}",
                            i, j
                        );
                    }
                }
            }
        }
        // Two core points within eps share a cluster.
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if out.core[i] && out.core[j] && dist(&pts[i], &pts[j]) <= eps {
                    prop_assert_eq!(labels[i], labels[j]);
                }
            }
        }
    }

    /// Theorem 5.4's sandwich, testable form: on *stable* configurations
    /// — where exact DBSCAN at (1−ρ)ε and (1+ρ)ε already agree — the
    /// ρ-approximate clustering must equal the exact one. Unstable
    /// configurations (a pair sitting within ρ·ε of the ε boundary) are
    /// exactly the cases the theorem permits to differ, so they are
    /// discarded rather than asserted on.
    #[test]
    fn rho_approx_exact_on_stable_configurations(
        pts in dataset_strategy(),
        eps in 0.5f64..3.0,
        min_pts in 2usize..6,
    ) {
        let rho = 0.01;
        let data = Dataset::from_rows(2, &pts).unwrap();
        let lo = exact_dbscan(&data, (1.0 - rho) * eps, min_pts);
        let hi = exact_dbscan(&data, (1.0 + rho) * eps, min_pts);
        prop_assume!(lo.core == hi.core);
        prop_assume!(
            rand_index(&lo.clustering, &hi.clustering, NoisePolicy::Singletons) == 1.0
        );
        let exact = exact_dbscan(&data, eps, min_pts);
        let approx = rho_approx_dbscan(&data, eps, min_pts, rho).unwrap();
        // Core sets are sandwiched, and the sandwich is tight here.
        prop_assert_eq!(&approx.core, &exact.core);
        // On core points, the cell-based clustering is a *coarsening* of
        // exact DBSCAN's: Lemma 3.5's fully-direct rule can merge two
        // exact clusters through a shared border point lying in a core
        // cell (a corner case the paper's Corollary 3.6 glosses over —
        // see EXPERIMENTS.md), but it can never split a cluster, because
        // every exact density-reachability chain induces cell edges.
        let exact_labels = exact.clustering.labels();
        let approx_labels = approx.clustering.labels();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if exact.core[i] && exact.core[j] && exact_labels[i] == exact_labels[j] {
                    prop_assert_eq!(
                        approx_labels[i], approx_labels[j],
                        "core pair ({}, {}) split by the approximation", i, j
                    );
                }
            }
        }
        // Border/noise sandwich: labeled at (1−ρ)ε ⇒ labeled by the
        // approximation; noise at (1+ρ)ε ⇒ noise in the approximation.
        for i in 0..pts.len() {
            if lo.clustering.labels()[i].is_some() {
                prop_assert!(approx.clustering.labels()[i].is_some(), "point {}", i);
            }
            if hi.clustering.labels()[i].is_none() {
                prop_assert!(approx.clustering.labels()[i].is_none(), "point {}", i);
            }
        }
    }

    /// Every split strategy yields a disjoint cover of the points.
    #[test]
    fn split_regions_disjoint_cover(
        pts in dataset_strategy(),
        k in 1usize..8,
        strategy in prop::sample::select(vec![
            SplitStrategy::EvenSplit,
            SplitStrategy::ReducedBoundary,
            SplitStrategy::CostBased,
        ]),
    ) {
        let data = Dataset::from_rows(2, &pts).unwrap();
        let regions = split_regions(&data, k, 0.5, strategy);
        let mut seen = vec![false; pts.len()];
        for r in &regions {
            for p in &r.point_ids {
                prop_assert!(!seen[p.index()]);
                seen[p.index()] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// The region-split driver agrees with exact DBSCAN when using exact
    /// local clustering (SPARK configuration), for any split count.
    #[test]
    fn spark_region_driver_matches_exact(
        pts in dataset_strategy(),
        k in 1usize..6,
    ) {
        let data = Dataset::from_rows(2, &pts).unwrap();
        let exact = exact_dbscan(&data, 1.0, 3);
        let engine = Engine::with_cost_model(2, CostModel::free());
        let out = RegionDbscan::new(RegionParams::spark(1.0, 3, k))
            .run(&data, &engine)
            .unwrap();
        let ri = rand_index(
            &exact.clustering,
            &out.clustering,
            NoisePolicy::SingleCluster,
        );
        prop_assert!(ri >= 0.97, "Rand index {} too low (k={})", ri, k);
    }
}
