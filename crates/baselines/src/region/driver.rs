//! The region-split driver: split → halo → local clustering → merge.

use crate::region::split::{split_regions, Region, SplitStrategy};
use crate::rho_approx::rho_approx_dbscan;
use crate::{exact, BaselineOutput};
use rpdbscan_core::graph::UnionFind;
use rpdbscan_engine::{Engine, StageError};
use rpdbscan_geom::{Dataset, PointId};
use rpdbscan_grid::FxHashMap;
use rpdbscan_metrics::Clustering;

/// Parameters of a region-split DBSCAN run.
#[derive(Debug, Clone, Copy)]
pub struct RegionParams {
    /// DBSCAN radius ε.
    pub eps: f64,
    /// DBSCAN density threshold.
    pub min_pts: usize,
    /// `Some(ρ)` uses ρ-approximate local DBSCAN (ESP/RBP/CBP); `None`
    /// uses exact local DBSCAN (SPARK-DBSCAN, Table 2 "wo. ρ-approx").
    pub rho: Option<f64>,
    /// Number of contiguous sub-regions.
    pub num_splits: usize,
    /// Cut-plane strategy.
    pub strategy: SplitStrategy,
}

impl RegionParams {
    /// ESP-DBSCAN configuration (even-split + ρ-approximation).
    pub fn esp(eps: f64, min_pts: usize, rho: f64, k: usize) -> Self {
        Self {
            eps,
            min_pts,
            rho: Some(rho),
            num_splits: k,
            strategy: SplitStrategy::EvenSplit,
        }
    }

    /// RBP-DBSCAN configuration (reduced-boundary + ρ-approximation).
    pub fn rbp(eps: f64, min_pts: usize, rho: f64, k: usize) -> Self {
        Self {
            eps,
            min_pts,
            rho: Some(rho),
            num_splits: k,
            strategy: SplitStrategy::ReducedBoundary,
        }
    }

    /// CBP-DBSCAN configuration (cost-based + ρ-approximation).
    pub fn cbp(eps: f64, min_pts: usize, rho: f64, k: usize) -> Self {
        Self {
            eps,
            min_pts,
            rho: Some(rho),
            num_splits: k,
            strategy: SplitStrategy::CostBased,
        }
    }

    /// SPARK-DBSCAN configuration (cost-based, exact local DBSCAN).
    pub fn spark(eps: f64, min_pts: usize, k: usize) -> Self {
        Self {
            eps,
            min_pts,
            rho: None,
            num_splits: k,
            strategy: SplitStrategy::CostBased,
        }
    }
}

/// A region-split parallel DBSCAN (ESP-/RBP-/CBP-/SPARK-DBSCAN, §2.2.2).
#[derive(Debug, Clone)]
pub struct RegionDbscan {
    params: RegionParams,
}

/// Per-split local clustering result.
#[derive(Clone)]
struct LocalResult {
    /// The split's processing set (owners + halo), global ids.
    ids: Vec<PointId>,
    /// Local labels aligned with `ids`.
    labels: Vec<Option<u32>>,
    /// Core flags aligned with `ids`.
    core: Vec<bool>,
}

impl RegionDbscan {
    /// Builds a runner.
    pub fn new(params: RegionParams) -> Self {
        Self { params }
    }

    /// Runs split → local clustering → merge on the engine, with stage
    /// names `split:*`, `local:*`, `merge:*` for the breakdown metrics.
    pub fn run(&self, data: &Dataset, engine: &Engine) -> Result<BaselineOutput, StageError> {
        let p = self.params;

        // ---- Split phase (the paper's "expensive data split") ----------
        let split = engine.run_stage("split:partition", vec![()], |_ctx, ()| {
            let regions = split_regions(data, p.num_splits, p.eps, p.strategy);
            Ok(build_processing_sets(data, &regions, p.eps))
        })?;
        let processing: Vec<Vec<PointId>> = split.outputs.into_iter().next().expect("one task"); // lint:allow(panic-safety): single-input stage yields exactly one output (run_batch preserves arity)
        let points_processed: u64 = processing.iter().map(|s| s.len() as u64).sum();
        let num_splits = processing.len();
        // The split phase physically redistributes every processed point
        // (owners + duplicated halos) to its worker; charge that shuffle.
        let point_bytes = (data.dim() * 4) as u64;
        engine.shuffle_cost("split:shuffle", points_processed * point_bytes);

        // ---- Local clustering ------------------------------------------
        let locals = engine.run_stage("local:clustering", processing, |_ctx, ids| {
            let sub = data.gather(&ids);
            let (labels, core) = match p.rho {
                Some(rho) => {
                    let out = rho_approx_dbscan(&sub, p.eps, p.min_pts, rho)?;
                    (out.clustering.labels().to_vec(), out.core)
                }
                None => {
                    let out = exact::dbscan(&sub, p.eps, p.min_pts);
                    (out.clustering.labels().to_vec(), out.core)
                }
            };
            Ok(LocalResult { ids, labels, core })
        })?;

        // ---- Merge phase ------------------------------------------------
        let merged = engine.run_stage("merge:clusters", vec![locals.outputs], |_ctx, locals| {
            Ok(merge_local_clusters(data.len(), &locals))
        })?;
        let clustering = merged.outputs.into_iter().next().expect("one task"); // lint:allow(panic-safety): single-input stage yields exactly one output (run_batch preserves arity)
        Ok(BaselineOutput {
            clustering,
            points_processed,
            num_splits,
        })
    }
}

/// Expands each region to its processing set: every point within the core
/// box inflated by ε (owners plus halo). This is where the region-split
/// family duplicates points (Figure 14).
fn build_processing_sets(data: &Dataset, regions: &[Region], eps: f64) -> Vec<Vec<PointId>> {
    let inflated: Vec<_> = regions.iter().map(|r| r.bbox.inflate(eps)).collect();
    let mut sets: Vec<Vec<PointId>> = regions.iter().map(|r| r.point_ids.clone()).collect();
    // A membership mask per region avoids double-inserting owners.
    for (id, point) in data.iter() {
        for (ri, bb) in inflated.iter().enumerate() {
            if bb.contains(point) && !regions[ri].bbox.contains(point) {
                sets[ri].push(id);
            }
        }
    }
    sets
}

/// Merges local clusterings through shared points: two local clusters
/// unify when they share a point that at least one side saw as core (the
/// standard MR-DBSCAN merge rule). Final labels prefer assignments from a
/// split that saw the point as core.
fn merge_local_clusters(n: usize, locals: &[LocalResult]) -> Clustering {
    // Global cluster key space: (split, local label) densely packed.
    let mut offsets = Vec::with_capacity(locals.len());
    let mut total = 0u32;
    for l in locals {
        offsets.push(total);
        let max_label = l
            .labels
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        total += max_label;
    }
    let mut uf = UnionFind::new(total as usize);

    // For each point: (global cluster key, was core there) per split.
    let mut assignment: FxHashMap<u32, (u32, bool)> = FxHashMap::default();
    let mut final_label: Vec<Option<u32>> = vec![None; n];
    let mut final_is_core: Vec<bool> = vec![false; n];
    for (si, l) in locals.iter().enumerate() {
        for (pos, &pid) in l.ids.iter().enumerate() {
            let Some(local) = l.labels[pos] else { continue };
            let key = offsets[si] + local;
            let is_core = l.core[pos];
            match assignment.get(&pid.0) {
                Some(&(prev_key, prev_core)) => {
                    if is_core || prev_core {
                        uf.union(prev_key, key);
                    }
                    if is_core && !prev_core {
                        assignment.insert(pid.0, (key, true));
                    }
                }
                None => {
                    assignment.insert(pid.0, (key, is_core));
                }
            }
            // Track the preferred label source.
            if final_label[pid.index()].is_none() || (is_core && !final_is_core[pid.index()]) {
                final_label[pid.index()] = Some(key);
                final_is_core[pid.index()] = is_core;
            }
        }
    }
    // Resolve through the union-find and densify.
    let mut dense: FxHashMap<u32, u32> = FxHashMap::default();
    let labels = final_label
        .into_iter()
        .map(|l| {
            l.map(|key| {
                let root = uf.find(key);
                let next = dense.len() as u32;
                *dense.entry(root).or_insert(next)
            })
        })
        .collect();
    Clustering::new(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_engine::CostModel;
    use rpdbscan_metrics::{rand_index, NoisePolicy};

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.61803398875;
                let r = spread * (i % 10) as f64 / 10.0;
                vec![cx + r * a.cos(), cy + r * a.sin()]
            })
            .collect()
    }

    fn world() -> Dataset {
        let mut rows = blob(0.0, 0.0, 80, 0.4);
        rows.extend(blob(15.0, 3.0, 80, 0.4));
        rows.extend(blob(-9.0, 11.0, 80, 0.4));
        rows.push(vec![60.0, 60.0]);
        Dataset::from_rows(2, &rows).unwrap()
    }

    fn engine() -> Engine {
        Engine::with_cost_model(4, CostModel::free())
    }

    #[test]
    fn all_variants_match_exact_dbscan() {
        let data = world();
        let exact = exact::dbscan(&data, 1.0, 5);
        for params in [
            RegionParams::esp(1.0, 5, 0.01, 4),
            RegionParams::rbp(1.0, 5, 0.01, 4),
            RegionParams::cbp(1.0, 5, 0.01, 4),
            RegionParams::spark(1.0, 5, 4),
        ] {
            let out = RegionDbscan::new(params).run(&data, &engine()).unwrap();
            let ri = rand_index(
                &exact.clustering,
                &out.clustering,
                NoisePolicy::SingleCluster,
            );
            assert_eq!(ri, 1.0, "{:?}", params.strategy);
            assert_eq!(out.clustering.num_clusters(), 3);
            assert_eq!(out.clustering.noise_count(), 1);
        }
    }

    #[test]
    fn duplication_exceeds_n_with_multiple_splits() {
        let data = world();
        let out = RegionDbscan::new(RegionParams::esp(1.0, 5, 0.01, 6))
            .run(&data, &engine())
            .unwrap();
        assert!(
            out.points_processed >= data.len() as u64,
            "halo must not lose points"
        );
        assert!(out.num_splits > 1);
    }

    #[test]
    fn single_split_no_duplication() {
        let data = world();
        let out = RegionDbscan::new(RegionParams::cbp(1.0, 5, 0.01, 1))
            .run(&data, &engine())
            .unwrap();
        assert_eq!(out.points_processed, data.len() as u64);
        assert_eq!(out.num_splits, 1);
    }

    #[test]
    fn cluster_spanning_a_cut_is_merged() {
        // One long dense chain crossing the whole space: any cut slices
        // it, so merge correctness is what keeps it a single cluster.
        let rows: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 * 0.05, 0.0]).collect();
        let data = Dataset::from_rows(2, &rows).unwrap();
        for strategy in [
            SplitStrategy::EvenSplit,
            SplitStrategy::ReducedBoundary,
            SplitStrategy::CostBased,
        ] {
            let params = RegionParams {
                eps: 0.2,
                min_pts: 3,
                rho: Some(0.01),
                num_splits: 5,
                strategy,
            };
            let out = RegionDbscan::new(params).run(&data, &engine()).unwrap();
            assert_eq!(out.clustering.num_clusters(), 1, "{strategy:?}");
            assert_eq!(out.clustering.noise_count(), 0, "{strategy:?}");
        }
    }

    #[test]
    fn stage_names_logged() {
        let data = world();
        let e = engine();
        RegionDbscan::new(RegionParams::esp(1.0, 5, 0.01, 4))
            .run(&data, &e)
            .unwrap();
        let rep = e.report();
        for prefix in ["split:", "local:", "merge:"] {
            assert!(rep.stages.iter().any(|s| s.name.starts_with(prefix)));
        }
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(2, vec![]).unwrap();
        let out = RegionDbscan::new(RegionParams::esp(1.0, 5, 0.01, 4))
            .run(&data, &engine())
            .unwrap();
        assert!(out.clustering.is_empty());
        assert_eq!(out.points_processed, 0);
    }
}
