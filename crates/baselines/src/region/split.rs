//! Region partitioners: even-split, reduced-boundary, and cost-based cuts.

use rpdbscan_geom::{Aabb, Dataset, PointId};
use rpdbscan_grid::FxHashMap;

/// Cut-plane selection strategy (Table 2's three region-split families).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitStrategy {
    /// Balance point counts (median cut along the widest dimension).
    EvenSplit,
    /// Minimise the number of points inside the ±ε overlap slab.
    ReducedBoundary,
    /// Balance an estimated local-clustering cost (Σ n_cell² per side).
    CostBased,
}

/// One contiguous sub-region: a core box owning `point_ids` (disjoint
/// across regions; halos are added later by the driver).
#[derive(Debug, Clone)]
pub struct Region {
    /// The region's core bounding box.
    pub bbox: Aabb,
    /// Points whose coordinates fall in the core box.
    pub point_ids: Vec<PointId>,
}

/// Number of candidate cut positions evaluated per dimension by the
/// reduced-boundary and cost-based strategies.
const CANDIDATES: usize = 15;
/// Minimum fraction of a region's points each side of a cut must keep, so
/// degenerate slivers cannot be produced.
const MIN_SIDE_FRACTION: f64 = 0.1;

/// Recursively splits `data` into `k` contiguous regions using `strategy`
/// (always splitting the currently largest region, as the published
/// algorithms do).
pub fn split_regions(data: &Dataset, k: usize, eps: f64, strategy: SplitStrategy) -> Vec<Region> {
    let k = k.max(1);
    let Some(bbox) = data.bounding_box() else {
        return vec![Region {
            bbox: Aabb::new(vec![0.0; data.dim()], vec![0.0; data.dim()]),
            point_ids: Vec::new(),
        }];
    };
    let mut regions = vec![Region {
        bbox,
        point_ids: data.ids().collect(),
    }];
    while regions.len() < k {
        // Split the region with the most points.
        let Some((idx, _)) = regions
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.point_ids.len())
        else {
            break;
        };
        if regions[idx].point_ids.len() < 2 {
            break; // nothing left to split
        }
        let region = regions.swap_remove(idx);
        match split_one(data, &region, eps, strategy) {
            Some((a, b)) => {
                regions.push(a);
                regions.push(b);
            }
            None => {
                regions.push(region);
                break; // unsplittable (all points coincide)
            }
        }
    }
    regions
}

/// Splits one region into two along the chosen cut, or `None` when every
/// candidate is degenerate.
fn split_one(
    data: &Dataset,
    region: &Region,
    eps: f64,
    strategy: SplitStrategy,
) -> Option<(Region, Region)> {
    let (dim, cut) = match strategy {
        SplitStrategy::EvenSplit => even_split_cut(data, region)?,
        SplitStrategy::ReducedBoundary => boundary_cut(data, region, eps)?,
        SplitStrategy::CostBased => cost_cut(data, region, eps)?,
    };
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for &p in &region.point_ids {
        if data.point(p)[dim] <= cut {
            left.push(p);
        } else {
            right.push(p);
        }
    }
    if left.is_empty() || right.is_empty() {
        return None;
    }
    let (lb, rb) = region.bbox.split_at(dim, cut);
    Some((
        Region {
            bbox: lb,
            point_ids: left,
        },
        Region {
            bbox: rb,
            point_ids: right,
        },
    ))
}

/// Median cut along the widest dimension (even-split partitioning).
fn even_split_cut(data: &Dataset, region: &Region) -> Option<(usize, f64)> {
    let dim = region.bbox.widest_dim();
    let mut coords: Vec<f64> = region
        .point_ids
        .iter()
        .map(|&p| data.point(p)[dim])
        .collect();
    coords.sort_unstable_by(|a, b| a.total_cmp(b));
    let (&first, &last) = (coords.first()?, coords.last()?);
    let cut = coords[coords.len() / 2];
    // A median equal to the maximum leaves the right side empty (heavy
    // duplicates); fall back to the midpoint, then give up.
    if cut >= last {
        let mid = 0.5 * (first + last);
        if mid > first && mid < last {
            return Some((dim, mid));
        }
        return None;
    }
    Some((dim, cut))
}

/// Candidate cut positions: `CANDIDATES` quantiles of the point
/// coordinates along `dim`, constrained to keep `MIN_SIDE_FRACTION` on
/// both sides. Returns `(cut, left_count)` pairs.
fn quantile_candidates(sorted: &[f64]) -> Vec<(f64, usize)> {
    let n = sorted.len();
    let lo = ((n as f64) * MIN_SIDE_FRACTION) as usize;
    let hi = n - lo;
    let mut out = Vec::new();
    for q in 1..=CANDIDATES {
        let i = n * q / (CANDIDATES + 1);
        if i <= lo || i >= hi || i == 0 {
            continue;
        }
        // Cut at the midpoint between adjacent quantile coordinates, so
        // empty bands between clusters are reachable cut positions (the
        // whole point of reduced-boundary partitioning).
        let cut = 0.5 * (sorted[i - 1] + sorted[i]);
        if cut >= sorted[n - 1] || cut < sorted[0] {
            continue;
        }
        // left side = points with coord <= cut
        let left = sorted.partition_point(|&v| v <= cut);
        if left == 0 || left == n {
            continue;
        }
        out.push((cut, left));
    }
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

/// Reduced-boundary cut: over all dimensions, the candidate with the
/// fewest points in the `±ε` slab around the plane.
fn boundary_cut(data: &Dataset, region: &Region, eps: f64) -> Option<(usize, f64)> {
    let d = data.dim();
    let mut best: Option<(usize, f64, usize)> = None;
    for dim in 0..d {
        let mut coords: Vec<f64> = region
            .point_ids
            .iter()
            .map(|&p| data.point(p)[dim])
            .collect();
        coords.sort_unstable_by(|a, b| a.total_cmp(b));
        for (cut, _) in quantile_candidates(&coords) {
            let lo = coords.partition_point(|&v| v < cut - eps);
            let hi = coords.partition_point(|&v| v <= cut + eps);
            let slab = hi - lo;
            if best.is_none_or(|(_, _, b)| slab < b) {
                best = Some((dim, cut, slab));
            }
        }
    }
    best.map(|(dim, cut, _)| (dim, cut))
}

/// Cost-based cut (MR-DBSCAN's ESP/CBP estimator): per ε-cell cost is
/// `n_c²` (range-query work scales with local density squared); choose the
/// candidate minimising the cost difference between sides.
fn cost_cut(data: &Dataset, region: &Region, eps: f64) -> Option<(usize, f64)> {
    let d = data.dim();
    // ε-sided histogram restricted to the split dimension: cell cost
    // bucketed by its 1-d lattice index, per dimension.
    let mut best: Option<(usize, f64, f64)> = None;
    for dim in 0..d {
        // Full d-dimensional cell histogram, then project onto `dim`.
        let mut cells: FxHashMap<Vec<i64>, u64> = FxHashMap::default();
        for &p in &region.point_ids {
            let key: Vec<i64> = data
                .point(p)
                .iter()
                .map(|v| (v / eps).floor() as i64)
                .collect();
            *cells.entry(key).or_insert(0) += 1;
        }
        let mut coords: Vec<f64> = region
            .point_ids
            .iter()
            .map(|&p| data.point(p)[dim])
            .collect();
        coords.sort_unstable_by(|a, b| a.total_cmp(b));
        // Project cell costs onto this dimension's lattice.
        let mut lane_cost: FxHashMap<i64, f64> = FxHashMap::default();
        for (key, n) in &cells {
            *lane_cost.entry(key[dim]).or_insert(0.0) += (*n as f64) * (*n as f64);
        }
        let total: f64 = lane_cost.values().sum();
        for (cut, _) in quantile_candidates(&coords) {
            let cut_lane = (cut / eps).floor() as i64;
            let left: f64 = lane_cost
                .iter()
                .filter(|(&lane, _)| lane <= cut_lane)
                .map(|(_, &c)| c)
                .sum();
            let diff = (2.0 * left - total).abs();
            if best.is_none_or(|(_, _, b)| diff < b) {
                best = Some((dim, cut, diff));
            }
        }
    }
    best.map(|(dim, cut, _)| (dim, cut))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn uniform(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let flat: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(0.0..100.0)).collect();
        Dataset::from_flat(2, flat).unwrap()
    }

    fn skewed(n: usize, seed: u64) -> Dataset {
        // 80% of the mass in a tiny corner blob.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flat = Vec::with_capacity(n * 2);
        for i in 0..n {
            if i < n * 8 / 10 {
                flat.push(rng.gen_range(0.0..2.0));
                flat.push(rng.gen_range(0.0..2.0));
            } else {
                flat.push(rng.gen_range(0.0..100.0));
                flat.push(rng.gen_range(0.0..100.0));
            }
        }
        Dataset::from_flat(2, flat).unwrap()
    }

    fn check_disjoint_cover(data: &Dataset, regions: &[Region]) {
        let mut seen = vec![false; data.len()];
        for r in regions {
            for p in &r.point_ids {
                assert!(!seen[p.index()], "point owned by two regions");
                seen[p.index()] = true;
                assert!(
                    r.bbox.contains(data.point(*p)),
                    "owner box must contain point"
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "some point unowned");
    }

    #[test]
    fn even_split_produces_k_balanced_regions() {
        let d = uniform(2000, 1);
        let rs = split_regions(&d, 8, 2.0, SplitStrategy::EvenSplit);
        assert_eq!(rs.len(), 8);
        check_disjoint_cover(&d, &rs);
        let sizes: Vec<usize> = rs.iter().map(|r| r.point_ids.len()).collect();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        assert!(max <= min * 2, "even split too unbalanced: {sizes:?}");
    }

    #[test]
    fn all_strategies_cover_uniform_and_skewed() {
        for strategy in [
            SplitStrategy::EvenSplit,
            SplitStrategy::ReducedBoundary,
            SplitStrategy::CostBased,
        ] {
            for data in [uniform(1500, 2), skewed(1500, 3)] {
                let rs = split_regions(&data, 6, 2.0, strategy);
                check_disjoint_cover(&data, &rs);
                assert!(rs.len() >= 2, "{strategy:?}");
            }
        }
    }

    #[test]
    fn reduced_boundary_prefers_sparse_slabs() {
        // Two dense columns separated by an empty band: the cut must fall
        // in the band (zero boundary points) rather than the median.
        let mut flat = Vec::new();
        for i in 0..500 {
            flat.push(1.0 + (i % 10) as f64 * 0.01);
            flat.push(i as f64 * 0.1);
        }
        for i in 0..500 {
            flat.push(99.0 + (i % 10) as f64 * 0.01);
            flat.push(i as f64 * 0.1);
        }
        let d = Dataset::from_flat(2, flat).unwrap();
        let rs = split_regions(&d, 2, 1.0, SplitStrategy::ReducedBoundary);
        assert_eq!(rs.len(), 2);
        // Each side keeps exactly one column.
        let sizes: Vec<usize> = rs.iter().map(|r| r.point_ids.len()).collect();
        assert_eq!(sizes, vec![500, 500]);
    }

    #[test]
    fn identical_points_are_unsplittable() {
        let d = Dataset::from_flat(2, [5.0, 5.0].repeat(100)).unwrap();
        let rs = split_regions(&d, 4, 1.0, SplitStrategy::EvenSplit);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].point_ids.len(), 100);
    }

    #[test]
    fn empty_dataset_single_empty_region() {
        let d = Dataset::from_flat(2, vec![]).unwrap();
        let rs = split_regions(&d, 4, 1.0, SplitStrategy::CostBased);
        assert_eq!(rs.len(), 1);
        assert!(rs[0].point_ids.is_empty());
    }

    #[test]
    fn k_one_is_identity() {
        let d = uniform(100, 4);
        let rs = split_regions(&d, 1, 1.0, SplitStrategy::EvenSplit);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].point_ids.len(), 100);
    }
}
