//! The region-split family of parallel DBSCANs (§2.2.2 of the paper).
//!
//! All three published strategies share one framework — recursively cut
//! the space into `k` contiguous sub-regions, grow each by an ε halo so
//! boundary neighbourhoods are complete, cluster every sub-region locally,
//! then merge local clusters through the points shared by overlapping
//! halos. They differ only in how cut planes are chosen:
//!
//! * **even-split** (ESP-DBSCAN / RDD-DBSCAN): balance point *counts*;
//! * **reduced-boundary** (RBP-DBSCAN / DBSCAN-MR): minimise points inside
//!   the overlap slab;
//! * **cost-based** (CBP-DBSCAN, SPARK-DBSCAN / MR-DBSCAN): balance an
//!   estimated local-clustering *cost*.
//!
//! The framework exhibits — by design — the three problems the paper
//! attributes to the same-split restriction: an expensive split phase,
//! load imbalance under skew, and duplicated points in overlaps. The
//! experiment harness measures all three.

mod driver;
mod split;

pub use driver::{RegionDbscan, RegionParams};
pub use split::{split_regions, Region, SplitStrategy};
