//! Naive random-split DBSCAN (§2.2.1: SDBC, S-DBSCAN, SP-DBSCAN,
//! Cludoop).
//!
//! The entire data set is split into `k` disjoint random samples; each
//! sample is clustered *independently* — region queries see only the
//! sample, not the whole data set — and local clusters are merged through
//! representative points. The paper's critique, which this implementation
//! reproduces measurably: density estimates computed on a 1/k sample are
//! wrong (so `minPts` must be heuristically rescaled) and the merge is
//! approximate, so accuracy is lost. RP-DBSCAN keeps the random split but
//! repairs exactly this flaw with the broadcast cell dictionary.

use crate::exact;
use crate::BaselineOutput;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rpdbscan_core::graph::UnionFind;
use rpdbscan_engine::{Engine, StageError};
use rpdbscan_geom::{dist2, Dataset, PointId};
use rpdbscan_metrics::Clustering;

/// Parameters of the naive random-split baseline.
#[derive(Debug, Clone, Copy)]
pub struct NaiveParams {
    /// DBSCAN radius ε.
    pub eps: f64,
    /// DBSCAN density threshold on the *full* data set. Locally the
    /// threshold is rescaled to `max(2, minPts / k)` — the heuristic the
    /// naive family relies on.
    pub min_pts: usize,
    /// Number of random splits.
    pub num_splits: usize,
    /// Representatives sampled per local cluster for merging.
    pub reps_per_cluster: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl NaiveParams {
    /// Defaults: 16 representatives per cluster.
    pub fn new(eps: f64, min_pts: usize, k: usize) -> Self {
        Self {
            eps,
            min_pts,
            num_splits: k.max(1),
            reps_per_cluster: 16,
            seed: 0,
        }
    }
}

/// The naive random-split DBSCAN runner.
#[derive(Debug, Clone)]
pub struct NaiveRandomDbscan {
    params: NaiveParams,
}

impl NaiveRandomDbscan {
    /// Builds a runner.
    pub fn new(params: NaiveParams) -> Self {
        Self { params }
    }

    /// Runs split → independent local DBSCAN → representative merge.
    pub fn run(&self, data: &Dataset, engine: &Engine) -> Result<BaselineOutput, StageError> {
        let p = self.params;
        let n = data.len();
        let k = p.num_splits.min(n.max(1)).max(1);
        // Random disjoint splits of the id space.
        let mut ids: Vec<PointId> = data.ids().collect();
        let mut rng = StdRng::seed_from_u64(p.seed);
        ids.shuffle(&mut rng);
        let splits: Vec<Vec<PointId>> = (0..k)
            .map(|s| ids[s..].iter().step_by(k).copied().collect())
            .collect();

        // Local clustering on each sample with rescaled minPts.
        let local_min_pts = (p.min_pts / k).max(2);
        let locals = engine.run_stage("naive:local", splits, |_ctx, ids| {
            let sub = data.gather(&ids);
            let out = exact::dbscan(&sub, p.eps, local_min_pts);
            Ok((ids, out))
        })?;

        // Merge: local clusters whose sampled representatives come within
        // eps of each other are unified.
        let merged = engine.run_stage("naive:merge", vec![locals.outputs], |_ctx, locals| {
            Ok(merge_by_representatives(
                data,
                &locals,
                p.eps,
                p.reps_per_cluster,
                p.seed,
            ))
        })?;
        let clustering = merged.outputs.into_iter().next().expect("one task"); // lint:allow(panic-safety): single-input stage yields exactly one output (run_batch preserves arity)
        Ok(BaselineOutput {
            clustering,
            points_processed: n as u64,
            num_splits: k,
        })
    }
}

fn merge_by_representatives(
    data: &Dataset,
    locals: &[(Vec<PointId>, exact::ExactOutput)],
    eps: f64,
    reps_per_cluster: usize,
    seed: u64,
) -> Clustering {
    let n = data.len();
    // Global key space (split, local cluster) and representative sets.
    let mut offsets = Vec::with_capacity(locals.len());
    let mut total = 0u32;
    for (_, out) in locals {
        offsets.push(total);
        let max = out
            .clustering
            .labels()
            .iter()
            .flatten()
            .copied()
            .max()
            .map_or(0, |m| m + 1);
        total += max;
    }
    let mut reps: Vec<Vec<PointId>> = vec![Vec::new(); total as usize];
    let mut labels: Vec<Option<u32>> = vec![None; n];
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
    for (si, (ids, out)) in locals.iter().enumerate() {
        for (pos, &pid) in ids.iter().enumerate() {
            if let Some(local) = out.clustering.labels()[pos] {
                let key = offsets[si] + local;
                labels[pid.index()] = Some(key);
                // Reservoir-style cap on representatives, biased to core
                // points which carry the density information.
                let r = &mut reps[key as usize];
                if r.len() < reps_per_cluster && (out.core[pos] || rng.gen_ratio(1, 4)) {
                    r.push(pid);
                }
            }
        }
    }
    // Pairwise representative merge: an approximation by construction —
    // two clusters whose true bridge points were not sampled stay apart,
    // and conversely two density-separate clusters may merge through
    // border representatives. This is the accuracy loss §2.2.1 describes.
    let eps2 = eps * eps;
    let mut uf = UnionFind::new(total as usize);
    for a in 0..total {
        for b in (a + 1)..total {
            'outer: for &pa in &reps[a as usize] {
                for &pb in &reps[b as usize] {
                    if dist2(data.point(pa), data.point(pb)) <= eps2 {
                        uf.union(a, b);
                        break 'outer;
                    }
                }
            }
        }
    }
    let mut dense: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    Clustering::new(
        labels
            .into_iter()
            .map(|l| {
                l.map(|key| {
                    let root = uf.find(key);
                    let next = dense.len() as u32;
                    *dense.entry(root).or_insert(next)
                })
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_engine::CostModel;
    use rpdbscan_metrics::{rand_index, NoisePolicy};

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.61803398875;
                let r = spread * (i % 10) as f64 / 10.0;
                vec![cx + r * a.cos(), cy + r * a.sin()]
            })
            .collect()
    }

    fn engine() -> Engine {
        Engine::with_cost_model(4, CostModel::free())
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let mut rows = blob(0.0, 0.0, 120, 0.4);
        rows.extend(blob(50.0, 50.0, 120, 0.4));
        let data = Dataset::from_rows(2, &rows).unwrap();
        let out = NaiveRandomDbscan::new(NaiveParams::new(1.0, 8, 4))
            .run(&data, &engine())
            .unwrap();
        assert_eq!(out.clustering.num_clusters(), 2);
        assert_eq!(out.points_processed, 240);
    }

    #[test]
    fn single_split_equals_exact() {
        let mut rows = blob(0.0, 0.0, 100, 0.4);
        rows.push(vec![80.0, 80.0]);
        let data = Dataset::from_rows(2, &rows).unwrap();
        let exact = exact::dbscan(&data, 1.0, 8);
        let out = NaiveRandomDbscan::new(NaiveParams::new(1.0, 8, 1))
            .run(&data, &engine())
            .unwrap();
        // k = 1 keeps local minPts = max(2, 8) = 8, same as exact.
        let ri = rand_index(
            &exact.clustering,
            &out.clustering,
            NoisePolicy::SingleCluster,
        );
        assert_eq!(ri, 1.0);
    }

    #[test]
    fn accuracy_degrades_on_touching_structures() {
        // Two moderately-dense arcs separated by slightly more than eps:
        // sampling distorts densities, so the naive family misjudges
        // cores/merges somewhere across seeds. We only assert it is
        // *measurably worse or equal* and never crashes; the ablation bin
        // quantifies the gap.
        let mut rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![i as f64 * 0.05, (i as f64 * 0.05).sin()])
            .collect();
        rows.extend((0..300).map(|i| vec![i as f64 * 0.05, 2.2 + (i as f64 * 0.05).sin()]));
        let data = Dataset::from_rows(2, &rows).unwrap();
        let exact = exact::dbscan(&data, 0.4, 6);
        let out = NaiveRandomDbscan::new(NaiveParams::new(0.4, 6, 6))
            .run(&data, &engine())
            .unwrap();
        let ri = rand_index(
            &exact.clustering,
            &out.clustering,
            NoisePolicy::SingleCluster,
        );
        assert!(ri <= 1.0);
        assert!(out.clustering.num_clusters() >= 1);
    }

    #[test]
    fn empty_and_tiny() {
        let e = engine();
        let empty = Dataset::from_flat(2, vec![]).unwrap();
        let out = NaiveRandomDbscan::new(NaiveParams::new(1.0, 4, 4))
            .run(&empty, &e)
            .unwrap();
        assert!(out.clustering.is_empty());
        let two = Dataset::from_rows(2, &[vec![0.0, 0.0], vec![0.1, 0.0]]).unwrap();
        let out = NaiveRandomDbscan::new(NaiveParams::new(1.0, 2, 4))
            .run(&two, &e)
            .unwrap();
        assert_eq!(out.clustering.len(), 2);
    }
}
