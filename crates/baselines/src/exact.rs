//! The original DBSCAN algorithm (Ester et al. 1996, §2.1 of the paper).
//!
//! Used as ground truth for the accuracy experiments (Table 4): the Rand
//! index compares every parallel algorithm's output against this one.
//! Region queries run on a kd-tree, so the implementation is exact for any
//! dimensionality; the expansion is the textbook seed-list BFS with
//! first-come border assignment.

use rpdbscan_geom::{Dataset, KdTree};
use rpdbscan_metrics::Clustering;

/// Exact DBSCAN result: labels plus the core flags the region-split
/// merge logic needs.
#[derive(Debug, Clone)]
pub struct ExactOutput {
    /// Point labels (None = noise).
    pub clustering: Clustering,
    /// `core[i]` is true iff point `i` is a core point.
    pub core: Vec<bool>,
}

/// Runs exact DBSCAN on `data`.
///
/// `|N_ε(p)|` counts `p` itself, matching the original paper and every
/// implementation compared here (RP-DBSCAN likewise counts the query
/// point's own sub-cell).
///
/// ```
/// use rpdbscan_baselines::exact_dbscan;
/// use rpdbscan_geom::Dataset;
///
/// let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
/// let data = Dataset::from_rows(2, &rows).unwrap();
/// let out = exact_dbscan(&data, 0.25, 3);
/// assert_eq!(out.clustering.num_clusters(), 1);
/// ```
pub fn dbscan(data: &Dataset, eps: f64, min_pts: usize) -> ExactOutput {
    let n = data.len();
    let mut labels: Vec<Option<u32>> = vec![None; n];
    let mut core = vec![false; n];
    if n == 0 {
        return ExactOutput {
            clustering: Clustering::new(labels),
            core,
        };
    }
    let tree = KdTree::build(data.dim(), data.flat().to_vec(), (0..n as u32).collect());

    // Pass 1: core flags.
    let mut neighbors: Vec<u32> = Vec::new();
    for (i, is_core) in core.iter_mut().enumerate() {
        neighbors.clear();
        tree.for_each_within(data.point_at(i), eps, |id, _| neighbors.push(id));
        *is_core = neighbors.len() >= min_pts;
    }

    // Pass 2: expansion from unvisited core points.
    let mut visited = vec![false; n];
    let mut next_cluster = 0u32;
    let mut queue: Vec<u32> = Vec::new();
    for i in 0..n {
        if !core[i] || visited[i] {
            continue;
        }
        let cid = next_cluster;
        next_cluster += 1;
        visited[i] = true;
        labels[i] = Some(cid);
        queue.clear();
        queue.push(i as u32);
        while let Some(u) = queue.pop() {
            // u is core: everything in its ε-ball joins the cluster and
            // core neighbours continue the expansion.
            neighbors.clear();
            tree.for_each_within(data.point(rpdbscan_geom::PointId(u)), eps, |id, _| {
                neighbors.push(id)
            });
            for &v in &neighbors {
                let vi = v as usize;
                if labels[vi].is_none() {
                    labels[vi] = Some(cid);
                }
                if core[vi] && !visited[vi] {
                    visited[vi] = true;
                    queue.push(v);
                }
            }
        }
    }
    ExactOutput {
        clustering: Clustering::new(labels),
        core,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_line(n: usize, step: f64) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 * step, 0.0]).collect();
        Dataset::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn chain_forms_one_cluster() {
        let d = grid_line(50, 0.1);
        let out = dbscan(&d, 0.25, 3);
        assert_eq!(out.clustering.num_clusters(), 1);
        assert_eq!(out.clustering.noise_count(), 0);
    }

    #[test]
    fn gap_splits_clusters() {
        let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1, 0.0]).collect();
        rows.extend((0..20).map(|i| vec![100.0 + i as f64 * 0.1, 0.0]));
        let d = Dataset::from_rows(2, &rows).unwrap();
        let out = dbscan(&d, 0.25, 3);
        assert_eq!(out.clustering.num_clusters(), 2);
    }

    #[test]
    fn isolated_points_are_noise() {
        let d = Dataset::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        let out = dbscan(&d, 1.0, 2);
        assert_eq!(out.clustering.noise_count(), 2);
        assert!(!out.core[0] && !out.core[1]);
    }

    #[test]
    fn min_pts_one_everything_clusters() {
        let d = Dataset::from_rows(2, &[vec![0.0, 0.0], vec![10.0, 10.0]]).unwrap();
        let out = dbscan(&d, 1.0, 1);
        assert_eq!(out.clustering.num_clusters(), 2);
        assert_eq!(out.clustering.noise_count(), 0);
    }

    #[test]
    fn border_point_is_labeled_but_not_core() {
        // A 20-point dense run; one extra point reachable from the run's
        // last core point but with too few neighbours to be core itself.
        let mut rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.01, 0.0]).collect();
        rows.push(vec![0.45, 0.0]); // sees only the tail of the run
        let d = Dataset::from_rows(2, &rows).unwrap();
        let out = dbscan(&d, 0.3, 10);
        assert_eq!(out.clustering.num_clusters(), 1);
        let border = out.clustering.labels()[20];
        assert_eq!(border, out.clustering.labels()[0]);
        assert!(!out.core[20], "border point must not be core");
        assert!(out.core[10], "interior point must be core");
    }

    #[test]
    fn core_count_includes_self() {
        // 3 points pairwise within eps: with minPts=3 all are core.
        let d = Dataset::from_rows(2, &[vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1]]).unwrap();
        let out = dbscan(&d, 0.5, 3);
        assert!(out.core.iter().all(|&c| c));
        assert_eq!(out.clustering.num_clusters(), 1);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_flat(3, vec![]).unwrap();
        let out = dbscan(&d, 1.0, 3);
        assert!(out.clustering.is_empty());
    }

    #[test]
    fn duplicate_points_count_toward_density() {
        let rows = vec![vec![1.0, 1.0]; 5];
        let d = Dataset::from_rows(2, &rows).unwrap();
        let out = dbscan(&d, 0.1, 5);
        assert_eq!(out.clustering.num_clusters(), 1);
        assert!(out.core.iter().all(|&c| c));
    }
}
