//! The comparison algorithms of the paper's evaluation (Table 2).
//!
//! | Algorithm | Paper description | Module |
//! |---|---|---|
//! | DBSCAN | original algorithm (ground truth) | [`exact`] |
//! | SPARK-DBSCAN | cost-based region split, **without** ρ-approximation | [`region`] with [`region::SplitStrategy::CostBased`] + exact local clustering |
//! | ESP-DBSCAN | even-split region split with ρ-approximation | [`region`] with [`region::SplitStrategy::EvenSplit`] |
//! | RBP-DBSCAN | reduced-boundary region split with ρ-approximation | [`region`] with [`region::SplitStrategy::ReducedBoundary`] |
//! | CBP-DBSCAN | cost-based region split with ρ-approximation | [`region`] with [`region::SplitStrategy::CostBased`] |
//! | NG-DBSCAN | vertex-centric neighbour graph | [`ng`] |
//!
//! All parallel baselines run on the same [`rpdbscan_engine::Engine`] as
//! RP-DBSCAN so their stage timings, load imbalance, and duplication are
//! directly comparable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod naive;
pub mod ng;
pub mod region;
pub mod rho_approx;

pub use exact::dbscan as exact_dbscan;
pub use naive::{NaiveParams, NaiveRandomDbscan};
pub use ng::{NgDbscan, NgParams};
pub use region::{RegionDbscan, RegionParams, SplitStrategy};
pub use rho_approx::rho_approx_dbscan;

use rpdbscan_metrics::Clustering;
/// Output common to the parallel baselines.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// Point labels (None = noise).
    pub clustering: Clustering,
    /// Total points processed across all splits — exceeds `N` for the
    /// region-split family because overlap regions duplicate points
    /// (Figure 14).
    pub points_processed: u64,
    /// Number of data splits used.
    pub num_splits: usize,
}

/// Statistics shared by baseline implementations, serialisable for the
/// experiment harness.
#[derive(Debug, Clone, Default)]
pub struct SplitStats {
    /// Points per split (after halo duplication where applicable).
    pub split_sizes: Vec<usize>,
}
