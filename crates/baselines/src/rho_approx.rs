//! ρ-approximate DBSCAN (Gan & Tao 2015) as a single-machine clusterer.
//!
//! The paper incorporates ρ-approximate DBSCAN into the local-clustering
//! step of ESP-/RBP-/CBP-DBSCAN for a fair comparison with RP-DBSCAN
//! (§7.1.2). Rather than re-deriving the machinery, this reuses the
//! RP-DBSCAN cell pipeline with a single partition: build the grid and
//! two-level dictionary over the (local) data, mark cores with
//! `(ε,ρ)`-region queries, connect cells, and label — which is exactly
//! the cell-based approximation of Gan & Tao that RP-DBSCAN generalises.

use rpdbscan_core::label::{
    assemble_clustering, extract_clusters, label_partition, predecessor_map,
};
use rpdbscan_core::partition::{group_by_cell, Partition};
use rpdbscan_core::phase2::{build_local_clustering, QueryRouting};
use rpdbscan_engine::TaskError;
use rpdbscan_geom::Dataset;
use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec};
use rpdbscan_metrics::Clustering;

/// ρ-approximate DBSCAN result with core flags.
#[derive(Debug, Clone)]
pub struct RhoApproxOutput {
    /// Point labels (None = noise).
    pub clustering: Clustering,
    /// `core[i]` is true iff point `i` is an (approximate) core point.
    pub core: Vec<bool>,
}

/// Runs ρ-approximate DBSCAN on `data`.
///
/// Errors when `(data.dim(), eps, rho)` is not a valid grid
/// configuration, or when the internal cell pipeline reports an
/// inconsistency; the baseline drivers run this inside engine tasks, so
/// the [`TaskError`] flows through their stage failure path.
pub fn rho_approx_dbscan(
    data: &Dataset,
    eps: f64,
    min_pts: usize,
    rho: f64,
) -> Result<RhoApproxOutput, TaskError> {
    let spec = GridSpec::new(data.dim(), eps, rho)
        .map_err(|e| TaskError::new(format!("invalid grid configuration: {e}")))?;
    let cells = group_by_cell(&spec, data);
    let part = Partition { id: 0, cells };
    let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, p)| p));
    let index = DictionaryIndex::single(dict);
    let local = build_local_clustering(&part, data, &index, min_pts, QueryRouting::auto(&index))?;

    let mut core = vec![false; data.len()];
    for pts in local.core_points.values() {
        for p in pts {
            core[p.index()] = true;
        }
    }
    let g = local.subgraph;
    debug_assert!(g.is_global(), "single partition graph must be global");
    let clusters = extract_clusters(&g);
    let preds = predecessor_map(&g);
    let labeled = label_partition(
        &part,
        &g,
        &clusters,
        &preds,
        &local.core_points,
        index.dict(),
        data,
        eps,
    )?;
    Ok(RhoApproxOutput {
        clustering: assemble_clustering(data.len(), vec![labeled]),
        core,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::dbscan;
    use rpdbscan_metrics::{rand_index, NoisePolicy};

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        for b in 0..3 {
            let (cx, cy) = (b as f64 * 20.0, b as f64 * -10.0);
            for i in 0..50 {
                let a = i as f64 * 0.618;
                let r = 0.5 * (i % 10) as f64 / 10.0;
                rows.push(vec![cx + r * a.cos(), cy + r * a.sin()]);
            }
        }
        rows.push(vec![500.0, 500.0]);
        Dataset::from_rows(2, &rows).unwrap()
    }

    #[test]
    fn matches_exact_dbscan_at_small_rho() {
        let d = blobs();
        let exact = dbscan(&d, 1.0, 5);
        let approx = rho_approx_dbscan(&d, 1.0, 5, 0.01).unwrap();
        let ri = rand_index(
            &exact.clustering,
            &approx.clustering,
            NoisePolicy::SingleCluster,
        );
        assert_eq!(ri, 1.0);
        assert_eq!(approx.core, exact.core);
    }

    #[test]
    fn three_clusters_one_outlier() {
        let d = blobs();
        let out = rho_approx_dbscan(&d, 1.0, 5, 0.01).unwrap();
        assert_eq!(out.clustering.num_clusters(), 3);
        assert_eq!(out.clustering.noise_count(), 1);
    }

    #[test]
    fn coarse_rho_still_reasonable() {
        let d = blobs();
        let exact = dbscan(&d, 1.0, 5);
        let approx = rho_approx_dbscan(&d, 1.0, 5, 0.5).unwrap();
        let ri = rand_index(
            &exact.clustering,
            &approx.clustering,
            NoisePolicy::SingleCluster,
        );
        assert!(ri > 0.95, "rho=0.5 Rand index {ri}");
    }

    #[test]
    fn empty_input() {
        let d = Dataset::from_flat(2, vec![]).unwrap();
        let out = rho_approx_dbscan(&d, 1.0, 5, 0.01).unwrap();
        assert!(out.clustering.is_empty());
        assert!(out.core.is_empty());
    }
}
