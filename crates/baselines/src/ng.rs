//! NG-DBSCAN (Lulli et al., VLDB'17) — the vertex-centric baseline
//! (§2.2.3 of the paper).
//!
//! Phase 1 grows an approximate k-nearest-neighbour graph from a random
//! starting configuration by NN-descent-style neighbour-of-neighbour
//! refinement; Phase 2 derives an ε-graph from it, marks core vertices by
//! their ε-degree, and propagates cluster membership over core–core
//! edges. Both phases run as engine stages over vertex chunks, mirroring
//! the vertex-centric ("think like a vertex") execution model.
//!
//! The construction is approximate by design — exactly the trade-off the
//! original system makes — and the paper's evaluation shows the neighbour
//! graph construction dominating its runtime on large inputs.

use crate::BaselineOutput;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_core::graph::UnionFind;
use rpdbscan_engine::{Engine, StageError};
use rpdbscan_geom::{dist2, Dataset};
use rpdbscan_grid::FxHashSet;
use rpdbscan_metrics::Clustering;

/// NG-DBSCAN parameters (defaults follow the open-source configuration's
/// spirit: a modest k refined over a handful of rounds).
#[derive(Debug, Clone, Copy)]
pub struct NgParams {
    /// DBSCAN radius ε.
    pub eps: f64,
    /// DBSCAN density threshold.
    pub min_pts: usize,
    /// Neighbour-list length k of the approximate k-NN graph.
    pub k_neighbors: usize,
    /// NN-descent refinement rounds.
    pub rounds: usize,
    /// Neighbours-of-neighbours sampled per neighbour each round.
    pub sample: usize,
    /// RNG seed for the random starting configuration.
    pub seed: u64,
}

impl NgParams {
    /// Defaults: k = max(2·minPts, 16) capped at 48, 6 rounds, sample 4.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Self {
            eps,
            min_pts,
            k_neighbors: (2 * min_pts).clamp(16, 48),
            rounds: 6,
            sample: 4,
            seed: 0,
        }
    }
}

/// The NG-DBSCAN runner.
#[derive(Debug, Clone)]
pub struct NgDbscan {
    params: NgParams,
}

impl NgDbscan {
    /// Builds a runner.
    pub fn new(params: NgParams) -> Self {
        Self { params }
    }

    /// Runs both phases on the engine with stage names `ng:*`.
    pub fn run(&self, data: &Dataset, engine: &Engine) -> Result<BaselineOutput, StageError> {
        let p = self.params;
        let n = data.len();
        if n == 0 {
            return Ok(BaselineOutput {
                clustering: Clustering::new(vec![]),
                points_processed: 0,
                num_splits: engine.workers(),
            });
        }
        let k = p.k_neighbors.min(n.saturating_sub(1)).max(1);
        let chunks = vertex_chunks(n, engine.workers().max(1) * 2);

        // ---- Phase 1: approximate k-NN graph ---------------------------
        // Random starting configuration.
        let init = engine.run_stage("ng:init", chunks.clone(), |ctx, (lo, hi)| {
            let mut rng =
                StdRng::seed_from_u64(p.seed ^ (ctx.index() as u64).wrapping_mul(0x9e37_79b9));
            let mut lists = Vec::with_capacity(hi - lo);
            for u in lo..hi {
                let mut nbrs: Vec<(f64, u32)> = Vec::with_capacity(k);
                let mut seen = FxHashSet::default();
                seen.insert(u as u32);
                // `seen.len() < n` guards tiny inputs where fewer than k
                // distinct non-self candidates exist.
                while nbrs.len() < k && seen.len() < n {
                    let v = rng.gen_range(0..n as u32);
                    if seen.insert(v) {
                        nbrs.push((dist2(data.point_at(u), data.point_at(v as usize)), v));
                    }
                }
                nbrs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                lists.push(nbrs);
            }
            Ok(lists)
        })?;
        let mut knn: Vec<Vec<(f64, u32)>> = init.outputs.into_iter().flatten().collect();

        // NN-descent rounds: candidates are neighbours of neighbours.
        // Each superstep of a vertex-centric framework shuffles the
        // neighbour lists between workers; charge that movement.
        let list_bytes = (n * k * 12) as u64; // (dist f64 + id u32) per slot
        for round in 0..p.rounds {
            engine.shuffle_cost(&format!("ng:shuffle-{round}"), list_bytes);
            let snapshot = &knn;
            let refined = engine.run_stage(
                &format!("ng:descend-{round}"),
                chunks.clone(),
                |_ctx, (lo, hi)| {
                    let mut lists = Vec::with_capacity(hi - lo);
                    for u in lo..hi {
                        let pu = data.point_at(u);
                        let mut best = snapshot[u].clone();
                        let mut seen: FxHashSet<u32> = best.iter().map(|&(_, v)| v).collect();
                        seen.insert(u as u32);
                        for &(_, v) in snapshot[u].iter().take(p.sample) {
                            for &(_, w) in snapshot[v as usize].iter().take(p.sample) {
                                if seen.insert(w) {
                                    best.push((dist2(pu, data.point_at(w as usize)), w));
                                }
                            }
                        }
                        best.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
                        best.truncate(k);
                        lists.push(best);
                    }
                    Ok(lists)
                },
            )?;
            knn = refined.outputs.into_iter().flatten().collect();
        }

        // ---- Phase 2: ε-graph, cores, propagation ----------------------
        let eps2 = p.eps * p.eps;
        // Symmetrised ε-adjacency from the k-NN lists.
        let eps_stage = engine.run_stage("ng:eps-graph", chunks.clone(), |_ctx, (lo, hi)| {
            let mut edges = Vec::new();
            for (u, neigh) in knn.iter().enumerate().take(hi).skip(lo) {
                for &(d2, v) in neigh {
                    if d2 <= eps2 {
                        edges.push((u as u32, v));
                    }
                }
            }
            Ok(edges)
        })?;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, v) in eps_stage.outputs.into_iter().flatten() {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        for l in &mut adj {
            l.sort_unstable();
            l.dedup();
        }

        // Core marking by ε-degree (self included, as everywhere else).
        let core: Vec<bool> = (0..n).map(|u| adj[u].len() + 1 >= p.min_pts).collect();

        // Clusters: components of core vertices; borders attach to any
        // core ε-neighbour.
        let mut uf = UnionFind::new(n);
        for u in 0..n {
            if !core[u] {
                continue;
            }
            for &v in &adj[u] {
                if core[v as usize] {
                    uf.union(u as u32, v);
                }
            }
        }
        let mut dense: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut labels: Vec<Option<u32>> = vec![None; n];
        for u in 0..n {
            if core[u] {
                let root = uf.find(u as u32);
                let next = dense.len() as u32;
                let cid = *dense.entry(root).or_insert(next);
                labels[u] = Some(cid);
            }
        }
        for u in 0..n {
            if labels[u].is_none() {
                if let Some(&v) = adj[u].iter().find(|&&v| core[v as usize]) {
                    labels[u] = labels[v as usize];
                }
            }
        }
        Ok(BaselineOutput {
            clustering: Clustering::new(labels),
            points_processed: n as u64,
            num_splits: chunks_len(n, engine.workers().max(1) * 2),
        })
    }
}

fn vertex_chunks(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let step = n.div_ceil(parts.max(1)).max(1);
    (0..n)
        .step_by(step)
        .map(|lo| (lo, (lo + step).min(n)))
        .collect()
}

fn chunks_len(n: usize, parts: usize) -> usize {
    vertex_chunks(n, parts).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use rpdbscan_engine::CostModel;
    use rpdbscan_metrics::{rand_index, NoisePolicy};

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.61803398875;
                let r = spread * (i % 10) as f64 / 10.0;
                vec![cx + r * a.cos(), cy + r * a.sin()]
            })
            .collect()
    }

    fn engine() -> Engine {
        Engine::with_cost_model(4, CostModel::free())
    }

    #[test]
    fn separated_blobs_recovered() {
        let mut rows = blob(0.0, 0.0, 100, 0.4);
        rows.extend(blob(30.0, 30.0, 100, 0.4));
        let data = Dataset::from_rows(2, &rows).unwrap();
        let out = NgDbscan::new(NgParams::new(1.0, 5))
            .run(&data, &engine())
            .unwrap();
        let exact = exact::dbscan(&data, 1.0, 5);
        let ri = rand_index(
            &exact.clustering,
            &out.clustering,
            NoisePolicy::SingleCluster,
        );
        assert!(ri > 0.95, "NG-DBSCAN too inaccurate: RI {ri}");
        assert_eq!(out.clustering.num_clusters(), 2);
    }

    #[test]
    fn outliers_stay_noise() {
        let mut rows = blob(0.0, 0.0, 100, 0.4);
        rows.push(vec![500.0, 500.0]);
        let data = Dataset::from_rows(2, &rows).unwrap();
        let out = NgDbscan::new(NgParams::new(1.0, 5))
            .run(&data, &engine())
            .unwrap();
        assert_eq!(out.clustering.labels()[100], None);
    }

    #[test]
    fn deterministic_given_seed() {
        let rows = blob(0.0, 0.0, 120, 0.6);
        let data = Dataset::from_rows(2, &rows).unwrap();
        let a = NgDbscan::new(NgParams::new(0.5, 4))
            .run(&data, &engine())
            .unwrap();
        let b = NgDbscan::new(NgParams::new(0.5, 4))
            .run(&data, &engine())
            .unwrap();
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let e = engine();
        let empty = Dataset::from_flat(2, vec![]).unwrap();
        let out = NgDbscan::new(NgParams::new(1.0, 3))
            .run(&empty, &e)
            .unwrap();
        assert!(out.clustering.is_empty());

        let one = Dataset::from_rows(2, &[vec![0.0, 0.0]]).unwrap();
        let out = NgDbscan::new(NgParams::new(1.0, 3)).run(&one, &e).unwrap();
        assert_eq!(out.clustering.noise_count(), 1);
    }

    #[test]
    fn stage_names_logged() {
        let rows = blob(0.0, 0.0, 60, 0.4);
        let data = Dataset::from_rows(2, &rows).unwrap();
        let e = engine();
        NgDbscan::new(NgParams::new(1.0, 4)).run(&data, &e).unwrap();
        let rep = e.report();
        assert!(rep.stages.iter().any(|s| s.name == "ng:init"));
        assert!(rep.stages.iter().any(|s| s.name.starts_with("ng:descend-")));
        assert!(rep.stages.iter().any(|s| s.name == "ng:eps-graph"));
    }

    #[test]
    fn no_duplication() {
        let rows = blob(0.0, 0.0, 80, 0.4);
        let data = Dataset::from_rows(2, &rows).unwrap();
        let out = NgDbscan::new(NgParams::new(1.0, 4))
            .run(&data, &engine())
            .unwrap();
        assert_eq!(out.points_processed, 80);
    }
}
