//! Epoch hot-swap: atomic publication of new index generations.
//!
//! Readers and the publisher share one [`IndexSlot`]. A reader clones
//! the current `Arc<ServingIndex>` out of the slot and then works
//! against an immutable object — a concurrent publication can never
//! mutate what the reader holds, only replace what the *next* reader
//! will get. The slot therefore gives each request a consistent epoch
//! for its whole lifetime, and
//! [`ServingIndex::verify_generation`] lets the hot-swap bench prove
//! the absence of torn reads outright.

use crate::index::ServingIndex;
use std::sync::{Arc, RwLock};

/// A shared slot holding the currently served index generation.
#[derive(Debug)]
pub struct IndexSlot {
    inner: RwLock<Arc<ServingIndex>>,
}

impl IndexSlot {
    /// A slot initially serving `index`.
    pub fn new(index: Arc<ServingIndex>) -> Self {
        Self {
            inner: RwLock::new(index),
        }
    }

    /// The currently published index. The returned `Arc` pins that
    /// generation for as long as the caller holds it, regardless of
    /// later publications.
    pub fn load(&self) -> Arc<ServingIndex> {
        Arc::clone(&self.inner.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Publishes a new generation unconditionally and returns its
    /// generation number. In-flight readers keep the generation they
    /// already loaded.
    pub fn publish(&self, index: Arc<ServingIndex>) -> u64 {
        let generation = index.generation();
        *self.inner.write().unwrap_or_else(|p| p.into_inner()) = index;
        generation
    }

    /// Publishes `index` only if its generation is strictly newer than
    /// the published one; returns whether the swap happened. This is the
    /// streaming publisher's idempotence guard: snapshots of an
    /// unchanged epoch carry the same version
    /// ([`Snapshot::epoch`](rpdbscan_stream::Snapshot::epoch)), so
    /// republishing them is skipped.
    pub fn publish_if_newer(&self, index: Arc<ServingIndex>) -> bool {
        let mut slot = self.inner.write().unwrap_or_else(|p| p.into_inner());
        if index.generation() > slot.generation() {
            *slot = index;
            true
        } else {
            false
        }
    }

    /// Generation of the currently published index.
    pub fn generation(&self) -> u64 {
        self.load().generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_core::{RpDbscan, RpDbscanParams};
    use rpdbscan_geom::Dataset;
    use std::thread;

    /// Smallest index that exercises the real `ServingIndex` layout:
    /// one dense 1-D run, two shards. Kept tiny so the nightly Miri
    /// smoke over this module stays tractable.
    fn tiny_index(generation: u64) -> Arc<ServingIndex> {
        let rows: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.1]).collect();
        let data = Dataset::from_rows(1, &rows).unwrap();
        let params = RpDbscanParams::new(1.0, 3);
        let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
        Arc::new(ServingIndex::from_batch(&data, &out, &params, 2, generation).unwrap())
    }

    #[test]
    fn load_pins_the_generation_across_publishes() {
        let slot = IndexSlot::new(tiny_index(1));
        let pinned = slot.load();
        assert_eq!(slot.publish(tiny_index(2)), 2);
        // The in-flight reader keeps its epoch; new loads see the swap.
        assert_eq!(pinned.generation(), 1);
        assert_eq!(pinned.verify_generation(), Some(1));
        assert_eq!(slot.load().generation(), 2);
        assert_eq!(slot.generation(), 2);
    }

    #[test]
    fn publish_if_newer_rejects_stale_and_equal_generations() {
        let slot = IndexSlot::new(tiny_index(5));
        assert!(!slot.publish_if_newer(tiny_index(4)));
        assert!(!slot.publish_if_newer(tiny_index(5)));
        assert_eq!(slot.generation(), 5);
        assert!(slot.publish_if_newer(tiny_index(6)));
        assert_eq!(slot.generation(), 6);
    }

    #[test]
    fn patched_chain_publishes_cleanly_through_the_slot() {
        // A delta-publish chain: epoch 1 is a full build, every later
        // epoch is patched on top of its predecessor and published
        // through the slot. Readers of any pinned generation must see
        // coherent head/tail *and* per-shard build stamps
        // (`verify_shards`), even though later generations Arc-share
        // shards with the one they hold.
        use rpdbscan_stream::StreamingRpDbscan;

        let mut stream = StreamingRpDbscan::new(1, RpDbscanParams::new(1.0, 3)).unwrap();
        let flat: Vec<f64> = (0..12).map(|i| i as f64 * 0.1).collect();
        stream.insert_batch(&flat).unwrap();
        let slot = IndexSlot::new(Arc::new(ServingIndex::from_stream(&stream, 2)));
        let pinned = slot.load();
        for step in 0..3 {
            let far: Vec<f64> = (0..4)
                .map(|i| 100.0 + step as f64 + i as f64 * 0.1)
                .collect();
            stream.insert_batch(&far).unwrap();
            let prev = slot.load();
            let next = Arc::new(ServingIndex::patch_from_stream(&prev, &stream).unwrap());
            assert!(next.patch_summary().is_some());
            assert_eq!(next.verify_shards(), Some(stream.epoch()));
            assert!(slot.publish_if_newer(next));
        }
        // The first generation's reader still verifies, untouched by the
        // three patched publishes layered above it.
        assert_eq!(pinned.verify_shards(), Some(pinned.generation()));
        assert_eq!(slot.load().generation(), stream.epoch());
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_generation() {
        // The live analogue of the `model::slot` sweep: readers verify
        // head/tail agreement while a publisher swaps epochs underneath.
        let slot = Arc::new(IndexSlot::new(tiny_index(1)));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&slot);
                thread::spawn(move || {
                    for _ in 0..20 {
                        let idx = s.load();
                        let g = idx.verify_generation().expect("torn generation observed");
                        assert_eq!(g, idx.generation());
                    }
                })
            })
            .collect();
        let publisher = {
            let s = Arc::clone(&slot);
            thread::spawn(move || {
                for g in 2..=4 {
                    assert!(s.publish_if_newer(tiny_index(g)));
                }
            })
        };
        for r in readers {
            r.join().unwrap();
        }
        publisher.join().unwrap();
        assert_eq!(slot.generation(), 4);
        assert_eq!(slot.load().verify_generation(), Some(4));
    }
}
