//! Epoch hot-swap: atomic publication of new index generations.
//!
//! Readers and the publisher share one [`IndexSlot`]. A reader clones
//! the current `Arc<ServingIndex>` out of the slot and then works
//! against an immutable object — a concurrent publication can never
//! mutate what the reader holds, only replace what the *next* reader
//! will get. The slot therefore gives each request a consistent epoch
//! for its whole lifetime, and
//! [`ServingIndex::verify_generation`] lets the hot-swap bench prove
//! the absence of torn reads outright.

use crate::index::ServingIndex;
use std::sync::{Arc, RwLock};

/// A shared slot holding the currently served index generation.
#[derive(Debug)]
pub struct IndexSlot {
    inner: RwLock<Arc<ServingIndex>>,
}

impl IndexSlot {
    /// A slot initially serving `index`.
    pub fn new(index: Arc<ServingIndex>) -> Self {
        Self {
            inner: RwLock::new(index),
        }
    }

    /// The currently published index. The returned `Arc` pins that
    /// generation for as long as the caller holds it, regardless of
    /// later publications.
    pub fn load(&self) -> Arc<ServingIndex> {
        Arc::clone(&self.inner.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Publishes a new generation unconditionally and returns its
    /// generation number. In-flight readers keep the generation they
    /// already loaded.
    pub fn publish(&self, index: Arc<ServingIndex>) -> u64 {
        let generation = index.generation();
        *self.inner.write().unwrap_or_else(|p| p.into_inner()) = index;
        generation
    }

    /// Publishes `index` only if its generation is strictly newer than
    /// the published one; returns whether the swap happened. This is the
    /// streaming publisher's idempotence guard: snapshots of an
    /// unchanged epoch carry the same version
    /// ([`Snapshot::epoch`](rpdbscan_stream::Snapshot::epoch)), so
    /// republishing them is skipped.
    pub fn publish_if_newer(&self, index: Arc<ServingIndex>) -> bool {
        let mut slot = self.inner.write().unwrap_or_else(|p| p.into_inner());
        if index.generation() > slot.generation() {
            *slot = index;
            true
        } else {
            false
        }
    }

    /// Generation of the currently published index.
    pub fn generation(&self) -> u64 {
        self.load().generation()
    }
}
