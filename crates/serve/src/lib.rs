//! Read-path serving layer: query a finished RP-DBSCAN clustering.
//!
//! The batch pipeline ends with a [`Clustering`] and the streaming
//! subsystem ends with an epoch [`Snapshot`] — both write-side artifacts.
//! This crate adds the read side: an immutable, cell-hash-sharded
//! [`ServingIndex`] answering three queries over a published clustering
//!
//! * [`ServingIndex::label_of`] — the stored label of an indexed point,
//! * [`ServingIndex::classify`] — the label a *new* coordinate would
//!   receive, resolved exactly as Phase III resolves border points
//!   (first predecessor core cell in coordinate order with a core point
//!   within ε wins, Algorithm 4 Lines 18–23),
//! * [`ServingIndex::cluster_stats`] — per-cluster size summaries,
//!
//! a [`Server`] front-end that micro-batches requests through the
//! execution engine's worker pool with per-shard routing, bounded-queue
//! admission control ([`ServeError::Overloaded`]) and a small LRU of
//! classify cell plans, and an [`IndexSlot`] for epoch hot-swap: the
//! streaming clusterer publishes each epoch's snapshot as a fresh
//! `Arc<ServingIndex>` that readers pick up atomically, with head/tail
//! generation counters proving no torn reads
//! ([`ServingIndex::verify_generation`]).
//!
//! ```
//! use std::sync::Arc;
//! use rpdbscan_core::{RpDbscan, RpDbscanParams};
//! use rpdbscan_geom::Dataset;
//! use rpdbscan_serve::ServingIndex;
//!
//! let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 * 0.05, 0.0]).collect();
//! let data = Dataset::from_rows(2, &rows).unwrap();
//! let params = RpDbscanParams::new(0.2, 3);
//! let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
//! let index = Arc::new(ServingIndex::from_batch(&data, &out, &params, 4, 1).unwrap());
//! // Stored label and fresh classification agree on an indexed point.
//! assert_eq!(
//!     index.classify(&[1.0, 0.0]).unwrap().label,
//!     index.label_of(20).unwrap(),
//! );
//! ```
//!
//! [`Clustering`]: rpdbscan_metrics::Clustering
//! [`Snapshot`]: rpdbscan_stream::Snapshot

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rpdbscan_engine::{StageError, TaskError};
use rpdbscan_grid::GridError;

mod cache;
mod index;
mod patch;
mod server;
mod swap;

pub use cache::PlanLru;
pub use index::{CellPlan, Classification, ClusterStats, ServingIndex};
pub use patch::PatchSummary;
pub use server::{Request, Response, Server, ServerConfig, ServerStats};
pub use swap::IndexSlot;

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The server's bounded request queue is full; the request was
    /// rejected at admission rather than queued unboundedly.
    Overloaded {
        /// The queue's configured capacity.
        capacity: usize,
    },
    /// A query coordinate has the wrong number of dimensions.
    DimensionMismatch {
        /// Dimensionality of the served clustering.
        expected: usize,
        /// Dimensionality of the query.
        got: usize,
    },
    /// A query coordinate is NaN or infinite.
    NonFinite,
    /// Grid construction failed while building an index.
    Grid(GridError),
    /// A clustering rebuild task failed while building an index.
    Task(TaskError),
    /// A serving stage failed on the engine.
    Stage(StageError),
    /// The clustering's label vector does not cover the dataset.
    LabelMismatch {
        /// Points in the dataset.
        points: usize,
        /// Labels in the clustering.
        labels: usize,
    },
    /// Classification replays Phase III against the exact cell graph, so
    /// an index can only be built from an exact-backend clustering; an
    /// approximate density backend selection (`knn` / `sampled`) is
    /// rejected at index build. The payload is the rejected backend's
    /// tag.
    UnsupportedBackend(&'static str),
    /// An incremental publish's base index serves a different grid than
    /// the stream it would patch from; shard layouts are only comparable
    /// when the grid specs match bitwise.
    PatchGridMismatch,
    /// An incremental publish's base index is not strictly older than the
    /// stream epoch, so there is no delta to apply.
    PatchNotNewer {
        /// Generation of the base index.
        base: u64,
        /// Epoch of the stream.
        epoch: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Overloaded { capacity } => {
                write!(f, "request queue full (capacity {capacity})")
            }
            Self::DimensionMismatch { expected, got } => {
                write!(f, "query has {got} coordinates, index expects {expected}")
            }
            Self::NonFinite => write!(f, "query coordinate is NaN or infinite"),
            Self::Grid(e) => write!(f, "grid error: {e}"),
            Self::Task(e) => write!(f, "index build task failed: {e}"),
            Self::Stage(e) => write!(f, "serving stage failed: {e}"),
            Self::LabelMismatch { points, labels } => {
                write!(f, "clustering has {labels} labels for {points} points")
            }
            Self::UnsupportedBackend(b) => write!(
                f,
                "serving indexes replay the exact cell graph; a `{b}`-backend \
                 clustering cannot be served"
            ),
            Self::PatchGridMismatch => write!(
                f,
                "incremental publish requires the base index and the stream \
                 to share a grid spec"
            ),
            Self::PatchNotNewer { base, epoch } => write!(
                f,
                "incremental publish base generation {base} is not older than \
                 stream epoch {epoch}"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Grid(e) => Some(e),
            Self::Stage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GridError> for ServeError {
    fn from(e: GridError) -> Self {
        Self::Grid(e)
    }
}

impl From<TaskError> for ServeError {
    fn from(e: TaskError) -> Self {
        Self::Task(e)
    }
}

impl From<StageError> for ServeError {
    fn from(e: StageError) -> Self {
        Self::Stage(e)
    }
}
