//! The immutable, sharded serving index.
//!
//! A [`ServingIndex`] is a frozen read-optimised copy of one clustering
//! epoch. Cells are hash-partitioned into `K` shards; each shard holds
//! its cells' records — cluster label, sorted predecessor core cells,
//! flat core-point coordinates, and a structure-of-arrays copy of the
//! sub-cell centres and densities (the same SoA layout the Phase II
//! query planner uses) — plus the point-id → label rows routed to it.
//!
//! Label resolution in [`ServingIndex::classify`] reproduces Phase III
//! exactly (Algorithm 4, Lines 10–23): a query in a core cell takes the
//! cell's cluster; a query in an occupied non-core cell is tested
//! against the core points of the cell's *stored* predecessor cells in
//! coordinate order, first hit wins — the same candidates in the same
//! order as `label_partition`, so indexed points classify to their
//! stored labels bit for bit. A query in an unoccupied cell (a
//! coordinate the clustering never saw) falls back to every core cell
//! whose box is within ε, still visited in coordinate order.

use crate::patch::PatchSummary;
use crate::ServeError;
use rpdbscan_core::label::{extract_clusters, predecessor_map};
use rpdbscan_core::partition::group_by_cell;
use rpdbscan_core::phase2::{build_local_clustering, QueryRouting};
use rpdbscan_core::{Partition, RpDbscanOutput, RpDbscanParams};
use rpdbscan_engine::TaskError;
use rpdbscan_geom::{dist2, kernel, Dataset};
use rpdbscan_grid::{
    CellCoord, CellDictionary, DictionaryIndex, FxHashMap, GridSpec, SubCellEntry,
};
use rpdbscan_stream::StreamingRpDbscan;
use std::sync::Arc;

/// Relative slack on squared-distance cell bounds, absorbing the
/// round-off of `side = eps/√d`. It is applied in both conservative
/// directions: candidate cells are kept when their box is within
/// `ε²(1+EPS_SLACK)` (boundary cells are never missed), and plan-time
/// resolution only fires with a margin (`never` above `ε²(1+EPS_SLACK)`,
/// `always` below `ε²(1−EPS_SLACK)`) — anything in doubt stays on the
/// tested list, where the per-query arithmetic replicates the scalar
/// oracle bit for bit. Same value and argument as
/// `rpdbscan_grid::plan::PLAN_SLACK`.
pub(crate) const EPS_SLACK: f64 = 1e-9;

/// Per-cluster size summary served by [`ServingIndex::cluster_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterStats {
    /// The dense cluster id.
    pub cluster: u32,
    /// Points labeled with the cluster (core and border).
    pub points: usize,
    /// Core points across the cluster's core cells.
    pub core_points: usize,
    /// Core cells forming the cluster.
    pub core_cells: usize,
}

/// Result of classifying a coordinate against a served clustering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// The cluster the coordinate joins (`None` = noise).
    pub label: Option<u32>,
    /// Approximate ε-neighbourhood size, estimated from the sub-cell
    /// summaries exactly as the paper's ρ-approximate region query
    /// counts density (Definition 5.1).
    pub density: u64,
}

/// Location of one cell record: `(shard, row)` into the index's shards.
/// Rows are *stable across patches* ([`ServingIndex::patch_from_stream`]
/// tombstones vacated rows instead of compacting), so a plan carried
/// over from the previous generation keeps resolving to the same
/// records.
pub(crate) type CellRef = (u32, u32);

/// A memoised classify plan for one grid cell: every shard lookup a
/// query landing in the cell will need, resolved once, plus the
/// plan-time half of the density estimate. Plans are bound to the
/// generation of the index that built them — the server's LRU drops
/// them on hot-swap.
///
/// The density candidates are resolved the same way the Phase II
/// [`CellQueryPlan`](rpdbscan_grid::CellQueryPlan) resolves them: a
/// candidate cell whose box is farther than ε from every point of the
/// home cell is pruned (*never*), a sub-cell centre within ε of every
/// point of the home cell is folded into a per-cell precomputed sum
/// (*always*), and everything near the boundary stays *tested*, where
/// [`ServingIndex::classify_with`] replicates the scalar oracle's
/// arithmetic exactly — same box origins, same bound formulas, same
/// centre coordinates, same `dist2` order — through the shared chunked
/// kernel ([`rpdbscan_geom::kernel`]).
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// The query's own cell, when occupied.
    pub(crate) home: Option<CellRef>,
    /// Core-cell candidates for label resolution, in coordinate order:
    /// the home cell's stored predecessors when the home cell is an
    /// occupied non-core cell, or the ε-window core cells when the home
    /// cell is unoccupied. Empty when the home cell is core.
    pub(crate) sources: Vec<CellRef>,
    /// Planned density cells: box origin per cell (`dim` values each,
    /// computed exactly as `cell_dist2_bounds` does: `coord · side`).
    pub(crate) d_lo: Vec<f64>,
    /// Planned density cells: total point count (full-containment case).
    pub(crate) d_total: Vec<u64>,
    /// Planned density cells: Σ counts of the always-qualifying
    /// sub-cells — added without a distance test whenever the cell is
    /// partially contained.
    pub(crate) d_always: Vec<u64>,
    /// Prefix offsets into `d_centers`/`d_counts` for each planned
    /// cell's tested sub-cells (`len = cells + 1`).
    pub(crate) d_sub_start: Vec<u32>,
    /// Tested sub-cell centres, SoA: `dim` values per sub-cell.
    pub(crate) d_centers: Vec<f64>,
    /// Tested sub-cell densities, parallel to `d_centers`.
    pub(crate) d_counts: Vec<u64>,
}

impl CellPlan {
    /// Number of per-query cell lookups the plan resolved (label source
    /// cells plus surviving density cells).
    pub fn num_candidates(&self) -> usize {
        self.sources.len() + self.d_total.len()
    }

    /// Number of sub-cell centres left for per-query distance tests.
    pub fn num_tested_subcells(&self) -> usize {
        self.d_counts.len()
    }

    /// Number of label source cells a non-core-home query scans (0 when
    /// the home cell is core — the label needs no per-point checks).
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of candidate cells surviving the plan-time never-prune in
    /// the density half.
    pub fn num_planned_cells(&self) -> usize {
        self.d_total.len()
    }
}

/// One cell's frozen record. Records sit behind `Arc` so an incremental
/// publish can pointer-copy the untouched rows of a patched shard.
#[derive(Debug, Clone)]
pub(crate) struct CellRecord {
    /// The cell's lattice coordinate.
    pub(crate) coord: CellCoord,
    /// Cluster id when the cell is core; `None` for non-core cells.
    pub(crate) cluster: Option<u32>,
    /// For non-core cells: predecessor core cells, coordinate-sorted.
    pub(crate) preds: Vec<CellCoord>,
    /// Flat coordinates of the cell's core points.
    pub(crate) core: Vec<f64>,
    /// SoA sub-cell centres (`dim` values per sub-cell).
    pub(crate) sub_centers: Vec<f64>,
    /// Sub-cell densities, parallel to `sub_centers`.
    pub(crate) sub_counts: Vec<u64>,
    /// Total points in the cell (= sum of `sub_counts`).
    pub(crate) count: u64,
}

/// One shard: the cells hashed to it. Shards sit behind `Arc` so an
/// incremental publish ([`ServingIndex::patch_from_stream`]) shares
/// every shard whose cells all held with the previous generation
/// wholesale — copy-on-write at shard granularity, per-cell `Arc`
/// pointer copies within a patched shard.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shard {
    /// Cell coordinate → row in `records`. Keys sit behind `Arc` so a
    /// patch's clone of the map is a refcount bump per entry instead of
    /// a fresh coordinate allocation (lookups still take a plain
    /// `&CellCoord` through `Borrow`).
    pub(crate) cells: FxHashMap<Arc<CellCoord>, u32>,
    /// Cell records; `None` marks a row a patch vacated. Rows are stable
    /// across patches — a surviving cell keeps its row, which is what
    /// lets carried-over plans keep their [`CellRef`]s.
    pub(crate) records: Vec<Option<Arc<CellRecord>>>,
    /// Vacated rows available for reuse by later patches.
    pub(crate) free: Vec<u32>,
    /// Generation that built or last patched this shard — equal to the
    /// index generation on patched shards, strictly older on shards
    /// shared from a previous generation.
    pub(crate) built: u64,
}

/// Point-id → label rows routed to one shard. Split from [`Shard`]
/// because point routing (`shard_of_point`) and cell routing
/// (`shard_of_cell`) hash independently: a patch can share a label
/// shard whose rows all held while rebuilding the same-numbered cell
/// shard, and vice versa.
#[derive(Debug, Clone, Default)]
pub(crate) struct LabelShard {
    /// Point id → stored label.
    pub(crate) labels: FxHashMap<u32, Option<u32>>,
    /// Generation that built or last patched this shard.
    pub(crate) built: u64,
}

/// Construction-time per-cell input, shared by the batch, stream, and
/// patch builders.
pub(crate) struct CellSeed {
    pub(crate) coord: CellCoord,
    pub(crate) cluster: Option<u32>,
    pub(crate) preds: Vec<CellCoord>,
    pub(crate) core: Vec<f64>,
    pub(crate) subs: Vec<SubCellEntry>,
}

impl CellSeed {
    /// Freezes the seed into a record: sub-cell centres are materialised
    /// into the SoA layout the classify kernel consumes. `scratch` must
    /// hold `dim` slots.
    pub(crate) fn into_record(self, spec: &GridSpec, scratch: &mut [f64]) -> CellRecord {
        let dim = spec.dim();
        let mut sub_centers = Vec::with_capacity(self.subs.len() * dim);
        let mut sub_counts = Vec::with_capacity(self.subs.len());
        let mut count = 0u64;
        for sub in &self.subs {
            spec.sub_center_into(&self.coord, sub.idx, scratch);
            sub_centers.extend_from_slice(scratch);
            sub_counts.push(u64::from(sub.count));
            count += u64::from(sub.count);
        }
        CellRecord {
            coord: self.coord,
            cluster: self.cluster,
            preds: self.preds,
            core: self.core,
            sub_centers,
            sub_counts,
            count,
        }
    }
}

/// An immutable, sharded, read-optimised copy of one clustering epoch.
///
/// Built either from a batch run ([`ServingIndex::from_batch`]) or from
/// the streaming clusterer's current epoch
/// ([`ServingIndex::from_stream`]); queried lock-free through shared
/// references (all methods take `&self` and mutate nothing).
#[derive(Debug)]
pub struct ServingIndex {
    pub(crate) spec: GridSpec,
    pub(crate) eps2: f64,
    /// Density backend that produced the served clustering (recorded at
    /// index build; always `exact` today since approximate backends are
    /// rejected, but surfaced so deployments can attribute what they
    /// serve).
    pub(crate) backend: &'static str,
    /// Head generation counter, written first at construction.
    pub(crate) generation: u64,
    pub(crate) shards: Vec<Arc<Shard>>,
    pub(crate) label_shards: Vec<Arc<LabelShard>>,
    pub(crate) clusters: Vec<ClusterStats>,
    pub(crate) num_points: usize,
    /// How this index was published: `Some` for an incremental patch of
    /// a previous generation ([`ServingIndex::patch_from_stream`]),
    /// `None` for a full build.
    pub(crate) patch: Option<PatchSummary>,
    /// Tail generation counter, written last at construction; equal to
    /// `generation` in any fully constructed index, so a reader seeing
    /// the pair disagree would have caught a torn publication.
    pub(crate) generation_tail: u64,
}

/// FNV-1a over a cell's lattice coordinates: the shard routing hash.
pub(crate) fn shard_of_cell(coord: &CellCoord, num_shards: usize) -> usize {
    (coord_fnv64(coord.coords()) % num_shards as u64) as usize
}

/// FNV-1a over a coordinate's lattice indices. Shard routing reduces it
/// modulo the shard count; the patch invalidation window stores the full
/// 64 bits as a compact stand-in for the coordinate itself (a collision
/// merely over-invalidates one cached plan, which is sound).
pub(crate) fn coord_fnv64(coords: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in coords {
        for b in c.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Multiplicative hash routing a point id to its shard.
pub(crate) fn shard_of_point(id: u32, num_shards: usize) -> usize {
    let h = u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    ((h >> 32) % num_shards as u64) as usize
}

impl ServingIndex {
    /// Builds an index from a finished batch run.
    ///
    /// The cell-level structure (core cells, predecessor sets, core
    /// points) is rebuilt from the dataset with a single-partition
    /// Phase II pass under the same parameters, which reproduces the
    /// run's global cell graph exactly: the graph is
    /// partition-independent, and `extract_clusters` assigns dense ids
    /// by first appearance over coordinate-sorted core cells, so the
    /// rebuilt ids equal the stored labels' ids.
    pub fn from_batch(
        data: &Dataset,
        output: &RpDbscanOutput,
        params: &RpDbscanParams,
        num_shards: usize,
        generation: u64,
    ) -> Result<Self, ServeError> {
        if !params.density_backend.is_exact() {
            return Err(ServeError::UnsupportedBackend(
                params.density_backend.name(),
            ));
        }
        let stored_labels = output.clustering.labels();
        if stored_labels.len() != data.len() {
            return Err(ServeError::LabelMismatch {
                points: data.len(),
                labels: stored_labels.len(),
            });
        }
        let spec = GridSpec::new(data.dim(), params.eps, params.rho)?;
        let cells = group_by_cell(&spec, data);
        let partition = Partition { id: 0, cells };
        let dict = CellDictionary::build_from_points(spec.clone(), data.iter().map(|(_, p)| p));
        let index = DictionaryIndex::new(dict, params.subdict_capacity);
        let local = build_local_clustering(
            &partition,
            data,
            &index,
            params.min_pts,
            QueryRouting::auto(&index),
        )?;
        let clusters = extract_clusters(&local.subgraph);
        let preds = predecessor_map(&local.subgraph);
        let dict = index.dict();

        // `extract_clusters` numbers clusters by first appearance over
        // dictionary indices, and index order differs between this 1-way
        // rebuild (coordinate-sorted) and the original k-way run
        // (partition order) — the partitions of ids differ only by a
        // permutation. Pin each rebuilt id to the stored one through any
        // core point: Phase III gives every core point its cell's
        // cluster id, so one lookup per cluster fixes the bijection.
        let disagree = || {
            ServeError::Task(TaskError::new(
                "stored stored_labels disagree with rebuilt clustering",
            ))
        };
        let mut remap: Vec<Option<u32>> = vec![None; clusters.num_clusters];
        let mut taken = vec![false; clusters.num_clusters];
        for i in 0..dict.num_cells() as u32 {
            let Some(&cid) = clusters.cluster_of_cell.get(&i) else {
                continue;
            };
            let Some(&p) = local.core_points.get(&i).and_then(|v| v.first()) else {
                continue;
            };
            let stored = stored_labels[p.index()].ok_or_else(disagree)?;
            match remap[cid as usize] {
                None => {
                    if taken.get(stored as usize).copied() != Some(false) {
                        return Err(disagree());
                    }
                    taken[stored as usize] = true;
                    remap[cid as usize] = Some(stored);
                }
                Some(prev) if prev != stored => return Err(disagree()),
                Some(_) => {}
            }
        }
        let remap: Vec<u32> = remap
            .into_iter()
            .map(|m| m.ok_or_else(disagree))
            .collect::<Result<_, _>>()?;

        let dim = data.dim();
        let mut seeds = Vec::with_capacity(dict.num_cells());
        for (i, entry) in dict.cells().iter().enumerate() {
            let i = i as u32;
            let cluster = clusters.cluster_of_cell.get(&i).map(|&c| remap[c as usize]);
            let pred_coords = if cluster.is_some() {
                Vec::new()
            } else {
                let mut pc: Vec<CellCoord> = preds
                    .get(&i)
                    .map(|v| v.iter().map(|&p| dict.entry(p).coord.clone()).collect())
                    .unwrap_or_default();
                pc.sort_unstable();
                pc
            };
            let mut core = Vec::new();
            if let Some(pts) = local.core_points.get(&i) {
                core.reserve(pts.len() * dim);
                for &p in pts {
                    core.extend_from_slice(data.point(p));
                }
            }
            seeds.push(CellSeed {
                coord: entry.coord.clone(),
                cluster,
                preds: pred_coords,
                core,
                subs: entry.subs.clone(),
            });
        }
        let rows: Vec<(u32, Option<u32>)> = stored_labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (i as u32, l))
            .collect();
        Ok(Self::build(
            spec,
            params.density_backend.name(),
            generation,
            num_shards,
            seeds,
            rows,
        ))
    }

    /// Builds an index from the streaming clusterer's current epoch.
    /// The index generation is the snapshot's epoch, so
    /// [`IndexSlot::publish_if_newer`](crate::IndexSlot::publish_if_newer)
    /// can skip republishing unchanged epochs.
    pub fn from_stream(stream: &StreamingRpDbscan, num_shards: usize) -> Self {
        let snap = stream.snapshot();
        let dict = stream.dictionary();
        let seeds: Vec<CellSeed> = stream
            .export_cells()
            .into_iter()
            .map(|e| {
                let subs = dict
                    .get(&e.coord)
                    .map(|c| c.subs.clone())
                    .unwrap_or_default();
                CellSeed {
                    coord: e.coord,
                    cluster: e.cluster,
                    preds: e.preds,
                    core: e.core_coords,
                    subs,
                }
            })
            .collect();
        let rows: Vec<(u32, Option<u32>)> = snap
            .ids
            .iter()
            .zip(snap.labels.labels().iter())
            .map(|(id, &l)| (id.0, l))
            .collect();
        Self::build(
            stream.spec().clone(),
            "exact",
            snap.epoch(),
            num_shards,
            seeds,
            rows,
        )
    }

    /// Assembles the sharded structure from per-cell seeds (coordinate
    /// order) and point rows.
    fn build(
        spec: GridSpec,
        backend: &'static str,
        generation: u64,
        num_shards: usize,
        seeds: Vec<CellSeed>,
        rows: Vec<(u32, Option<u32>)>,
    ) -> Self {
        let k = num_shards.max(1);
        let dim = spec.dim();
        let eps2 = spec.eps() * spec.eps();

        // Per-cluster summaries, folded over the plain vectors so the
        // totals never depend on hash-map iteration order.
        let num_clusters = seeds
            .iter()
            .filter_map(|s| s.cluster)
            .chain(rows.iter().filter_map(|&(_, l)| l))
            .map(|c| c as usize + 1)
            .max()
            .unwrap_or(0);
        let mut clusters: Vec<ClusterStats> = (0..num_clusters)
            .map(|c| ClusterStats {
                cluster: c as u32,
                points: 0,
                core_points: 0,
                core_cells: 0,
            })
            .collect();
        for s in &seeds {
            if let Some(c) = s.cluster {
                clusters[c as usize].core_cells += 1;
                clusters[c as usize].core_points += s.core.len() / dim;
            }
        }
        for &(_, label) in &rows {
            if let Some(c) = label {
                clusters[c as usize].points += 1;
            }
        }

        let mut shards: Vec<Shard> = (0..k).map(|_| Shard::default()).collect();
        let mut scratch = vec![0.0; dim];
        for seed in seeds {
            let shard = &mut shards[shard_of_cell(&seed.coord, k)];
            shard
                .cells
                .insert(Arc::new(seed.coord.clone()), shard.records.len() as u32);
            let rec = seed.into_record(&spec, &mut scratch);
            shard.records.push(Some(Arc::new(rec)));
        }
        for s in &mut shards {
            s.built = generation;
        }
        let num_points = rows.len();
        let mut label_shards: Vec<LabelShard> = (0..k).map(|_| LabelShard::default()).collect();
        for (id, label) in rows {
            label_shards[shard_of_point(id, k)].labels.insert(id, label);
        }
        for s in &mut label_shards {
            s.built = generation;
        }

        Self {
            spec,
            eps2,
            backend,
            generation,
            shards: shards.into_iter().map(Arc::new).collect(),
            label_shards: label_shards.into_iter().map(Arc::new).collect(),
            clusters,
            num_points,
            patch: None,
            generation_tail: generation,
        }
    }

    /// Density backend that produced the served clustering.
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The grid the index serves over.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// Dimensionality of served coordinates.
    pub fn dim(&self) -> usize {
        self.spec.dim()
    }

    /// The epoch this index was built from.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Reads both generation counters and returns the generation only if
    /// they agree. The head is written first and the tail last during
    /// construction, so `None` would mean a reader observed a partially
    /// constructed index — the torn-read detector the hot-swap bench
    /// asserts never fires.
    pub fn verify_generation(&self) -> Option<u64> {
        (self.generation == self.generation_tail).then_some(self.generation)
    }

    /// Like [`Self::verify_generation`], but additionally checks that no
    /// shard — cell or label — claims a build generation *newer* than
    /// the index itself. Patched generations `Arc`-share untouched
    /// shards with their base, so an (impossible by construction, hence
    /// asserted) in-place mutation of a shared shard by a later patch
    /// would trip exactly this. The delta-publish bench readers run it
    /// on every load.
    pub fn verify_shards(&self) -> Option<u64> {
        let g = self.verify_generation()?;
        let cells_ok = self.shards.iter().all(|s| s.built <= g);
        let labels_ok = self.label_shards.iter().all(|s| s.built <= g);
        (cells_ok && labels_ok).then_some(g)
    }

    /// How this index was published: `Some` when it was incrementally
    /// patched from a previous generation, `None` for a full build.
    pub fn patch_summary(&self) -> Option<&PatchSummary> {
        self.patch.as_ref()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of indexed points.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Number of occupied cells.
    pub fn num_cells(&self) -> usize {
        self.shards.iter().map(|s| s.cells.len()).sum()
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// The shard serving queries that land in `coord`'s cell.
    pub fn shard_of_coord(&self, coord: &CellCoord) -> u32 {
        shard_of_cell(coord, self.shards.len()) as u32
    }

    /// The shard holding point `id`'s label row.
    pub fn shard_of_id(&self, id: u32) -> u32 {
        shard_of_point(id, self.shards.len()) as u32
    }

    /// The stored label of indexed point `id`: `Some(label)` when the
    /// point is indexed (`label` itself is `None` for noise), `None` for
    /// unknown ids.
    pub fn label_of(&self, id: u32) -> Option<Option<u32>> {
        self.label_shards[shard_of_point(id, self.label_shards.len())]
            .labels
            .get(&id)
            .copied()
    }

    /// Size summary of cluster `cluster`, if it exists.
    pub fn cluster_stats(&self, cluster: u32) -> Option<&ClusterStats> {
        self.clusters.get(cluster as usize)
    }

    /// Checks a query coordinate's shape.
    fn validate(&self, q: &[f64]) -> Result<(), ServeError> {
        if q.len() != self.spec.dim() {
            return Err(ServeError::DimensionMismatch {
                expected: self.spec.dim(),
                got: q.len(),
            });
        }
        if q.iter().any(|v| !v.is_finite()) {
            return Err(ServeError::NonFinite);
        }
        Ok(())
    }

    /// Looks a cell up across the shards.
    pub(crate) fn find_cell(&self, coord: &CellCoord) -> Option<CellRef> {
        let s = shard_of_cell(coord, self.shards.len());
        self.shards[s].cells.get(coord).map(|&r| (s as u32, r))
    }

    pub(crate) fn record(&self, (s, r): CellRef) -> &CellRecord {
        self.shards[s as usize].records[r as usize]
            .as_deref()
            .expect("CellRef resolves to a vacated row") // lint:allow(panic-safety): refs come from the live cells map or from carried plans whose ε-window the patch kept clear of every vacated or rebuilt row
    }

    /// Builds the classify plan for one grid cell: resolves every shard
    /// lookup a query landing in `coord` will need and precomputes the
    /// plan-time half of the density estimate (never-pruned cells,
    /// always-qualifying sub-cell sums, tested sub-centre SoA). Plans
    /// are pure functions of the index, so the server memoises them per
    /// cell — and pre-populates them at publish time.
    pub fn plan_for(&self, coord: &CellCoord) -> CellPlan {
        let home = self.find_cell(coord);
        let candidates = self.window_candidates(coord);
        let sources = match home {
            // Core home cell: the label is the cell's cluster, no
            // per-point checks needed.
            Some(h) if self.record(h).cluster.is_some() => Vec::new(),
            // Occupied non-core cell: Phase III's exact candidate list —
            // the stored predecessors, already coordinate-sorted.
            Some(h) => self
                .record(h)
                .preds
                .iter()
                .filter_map(|c| self.find_cell(c))
                .collect(),
            // Unoccupied cell (a coordinate the clustering never saw):
            // fall back to every core cell within ε, coordinate-sorted —
            // the same candidates Phase II's region query would visit.
            None => candidates
                .iter()
                .copied()
                .filter(|&c| self.record(c).cluster.is_some())
                .collect(),
        };
        let dim = self.spec.dim();
        let side = self.spec.side();
        let never_bound = self.eps2 * (1.0 + EPS_SLACK);
        let always_bound = self.eps2 * (1.0 - EPS_SLACK);
        let mut plan = CellPlan {
            home,
            sources,
            d_lo: Vec::new(),
            d_total: Vec::new(),
            d_always: Vec::new(),
            d_sub_start: vec![0],
            d_centers: Vec::new(),
            d_counts: Vec::new(),
        };
        let mut seg_centers: Vec<f64> = Vec::new();
        let mut seg_counts: Vec<u64> = Vec::new();
        for &c in &candidates {
            let rec = self.record(c);
            let (min2, _) = self.spec.cell_box_dist2_bounds(coord, &rec.coord);
            if min2 > never_bound {
                // *never*: out of reach for every query point in `coord`.
                continue;
            }
            seg_centers.clear();
            seg_counts.clear();
            let mut t_always = 0u64;
            for (center, &n) in rec.sub_centers.chunks_exact(dim).zip(rec.sub_counts.iter()) {
                // Point-to-box bounds with the roles swapped: the
                // nearest/farthest point of `coord`'s box to this centre.
                let (cmin2, cmax2) = self.spec.cell_dist2_bounds(coord, center);
                if cmin2 > never_bound {
                    // *never*: beyond ε of every query in the home box —
                    // the per-query test can't hit, so drop it from the
                    // tested SoA. Its presence also makes the cell's
                    // full-containment branch unreachable (a query within
                    // ε of the whole cell box would be within ε of this
                    // centre), so `d_total` stays safe to report there.
                    continue;
                }
                if cmax2 <= always_bound {
                    t_always += n;
                } else {
                    seg_centers.extend_from_slice(center);
                    seg_counts.push(n);
                }
            }
            if t_always == 0 && seg_counts.is_empty() {
                // Every occupied sub-cell was never-pruned: the cell can
                // contribute nothing to any query in `coord` (its
                // full-containment branch is unreachable by the argument
                // above), so it earns no slot in the per-query loop.
                continue;
            }
            for &cc in rec.coord.coords() {
                plan.d_lo.push(cc as f64 * side);
            }
            plan.d_total.push(rec.count);
            plan.d_centers.extend_from_slice(&seg_centers);
            plan.d_counts.extend_from_slice(&seg_counts);
            plan.d_always.push(t_always);
            plan.d_sub_start.push(plan.d_counts.len() as u32);
        }
        plan
    }

    /// Occupied cells whose box is within ε of `coord`'s box, in
    /// coordinate order. Enumerates the `(2b+1)^d` window when that is
    /// cheaper than scanning the cell table, mirroring the streaming
    /// subsystem's dirty-region fallback for high dimensions.
    fn window_candidates(&self, coord: &CellCoord) -> Vec<CellRef> {
        let dim = self.spec.dim();
        let bound = self.eps2 * (1.0 + EPS_SLACK);
        let b = 1 + (dim as f64).sqrt().ceil() as i64;
        let width = (2 * b + 1) as usize;
        let box_cost = width.checked_pow(dim as u32);
        let table_cost = self.num_cells();
        if box_cost.is_some_and(|c| c <= table_cost.saturating_mul(4)) {
            // Enumerate offsets with dimension 0 as the outermost digit,
            // so candidates come out in lattice-coordinate order.
            let mut out = Vec::new();
            let mut offs = vec![-b; dim];
            let mut cand = Vec::with_capacity(dim);
            loop {
                cand.clear();
                cand.extend(coord.coords().iter().zip(offs.iter()).map(|(&c, &o)| c + o));
                let cc = CellCoord::new(cand.iter().copied());
                if self.spec.cell_min_dist2(coord, &cc) <= bound {
                    if let Some(r) = self.find_cell(&cc) {
                        out.push(r);
                    }
                }
                // Increment the mixed-radix counter, last dimension
                // fastest.
                let mut d = dim;
                loop {
                    if d == 0 {
                        return out;
                    }
                    d -= 1;
                    if offs[d] < b {
                        offs[d] += 1;
                        break;
                    }
                    offs[d] = -b;
                }
            }
        } else {
            // High dimension: the window would dwarf the table — scan
            // every record instead and sort by coordinate.
            let mut hits: Vec<(CellCoord, CellRef)> = Vec::new();
            for (s, shard) in self.shards.iter().enumerate() {
                for (r, rec) in shard.records.iter().enumerate() {
                    let Some(rec) = rec else { continue };
                    if self.spec.cell_min_dist2(coord, &rec.coord) <= bound {
                        hits.push((rec.coord.clone(), (s as u32, r as u32)));
                    }
                }
            }
            hits.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            hits.into_iter().map(|(_, r)| r).collect()
        }
    }

    /// Classifies a coordinate against the served clustering: the label
    /// a new point at `q` would receive under Phase III's rules, plus a
    /// ρ-approximate density estimate. See [`Self::classify_with`] for
    /// the plan-reusing form the server's cache drives.
    pub fn classify(&self, q: &[f64]) -> Result<Classification, ServeError> {
        self.validate(q)?;
        let plan = self.plan_for(&self.spec.cell_of(q));
        self.classify_with(&plan, q)
    }

    /// Classifies a coordinate using a memoised [`CellPlan`] built by
    /// [`Self::plan_for`] on this same index (plans do not survive a
    /// hot-swap; the server's LRU is flushed on generation change).
    ///
    /// Results are bit-identical to [`Self::classify_oracle`]: the label
    /// scan only changes *which* core point proves a source cell (the
    /// winning cell, and hence the label, is the same), and the density
    /// arithmetic replicates the oracle's per-query bounds and `dist2`
    /// expressions exactly, summing the same `u64` terms.
    // lint:hot
    pub fn classify_with(&self, plan: &CellPlan, q: &[f64]) -> Result<Classification, ServeError> {
        self.validate(q)?;
        let dim = self.spec.dim();
        let eps2 = self.eps2;
        let label = match plan.home {
            Some(h) if self.record(h).cluster.is_some() => self.record(h).cluster,
            _ => {
                // First candidate core cell (coordinate order) holding a
                // core point within ε wins — Algorithm 4, Lines 18–23.
                // The chunked kernel only proves existence; the label is
                // the cell's cluster, independent of which point hit.
                let mut label = None;
                for &c in &plan.sources {
                    let rec = self.record(c);
                    if kernel::any_within(q, &rec.core, dim, eps2) {
                        label = rec.cluster;
                        break;
                    }
                }
                label
            }
        };
        let side = self.spec.side();
        let mut density = 0u64;
        for j in 0..plan.d_total.len() {
            // Per-query box bounds, bit-identical to
            // `GridSpec::cell_dist2_bounds` (same origins, same formulas).
            let lo = &plan.d_lo[j * dim..(j + 1) * dim];
            let mut min_acc = 0.0;
            let mut max_acc = 0.0;
            for (&l, &v) in lo.iter().zip(q.iter()) {
                let hi = l + side;
                // Branch-free selection of the same values the branchy
                // `cell_dist2_bounds` arms produce: `l - v` when the
                // query is left of the box, `v - hi` right of it, else 0.
                let dmin = (l - v).max(v - hi).max(0.0);
                let dmax = (v - l).abs().max((v - hi).abs());
                min_acc += dmin * dmin;
                max_acc += dmax * dmax;
            }
            if min_acc > eps2 {
                continue;
            }
            if max_acc <= eps2 {
                // Fully contained cell: every sub-cell counts.
                density += plan.d_total[j];
            } else {
                // Partially contained: the always-qualifying sub-cells
                // were summed at plan time; the tested remainder runs
                // through the shared chunked kernel over the SoA centres.
                let start = plan.d_sub_start[j] as usize;
                let end = plan.d_sub_start[j + 1] as usize;
                density += plan.d_always[j]
                    + kernel::sum_within_u64(
                        q,
                        &plan.d_centers[start * dim..end * dim],
                        dim,
                        eps2,
                        &plan.d_counts[start..end],
                    );
            }
        }
        Ok(Classification { label, density })
    }

    /// Reference classification: rebuilds the candidate window per query
    /// and runs the scalar per-query arithmetic with no plan-time
    /// resolution. This is the oracle [`Self::classify_with`] is pinned
    /// against by the serve equivalence suite — label *and* density must
    /// match it bit for bit.
    pub fn classify_oracle(&self, q: &[f64]) -> Result<Classification, ServeError> {
        self.validate(q)?;
        let coord = self.spec.cell_of(q);
        let home = self.find_cell(&coord);
        let candidates = self.window_candidates(&coord);
        let label = match home {
            Some(h) if self.record(h).cluster.is_some() => self.record(h).cluster,
            _ => {
                let sources: Vec<CellRef> = match home {
                    Some(h) => self
                        .record(h)
                        .preds
                        .iter()
                        .filter_map(|c| self.find_cell(c))
                        .collect(),
                    None => candidates
                        .iter()
                        .copied()
                        .filter(|&c| self.record(c).cluster.is_some())
                        .collect(),
                };
                let mut label = None;
                'search: for &c in &sources {
                    let rec = self.record(c);
                    for p in rec.core.chunks_exact(self.spec.dim()) {
                        if dist2(p, q) <= self.eps2 {
                            label = rec.cluster;
                            break 'search;
                        }
                    }
                }
                label
            }
        };
        let mut density = 0u64;
        for &c in &candidates {
            let rec = self.record(c);
            let (lo, hi) = self.spec.cell_dist2_bounds(&rec.coord, q);
            if lo > self.eps2 {
                continue;
            }
            if hi <= self.eps2 {
                density += rec.count;
            } else {
                for (center, &n) in rec
                    .sub_centers
                    .chunks_exact(self.spec.dim())
                    .zip(rec.sub_counts.iter())
                {
                    if dist2(center, q) <= self.eps2 {
                        density += n;
                    }
                }
            }
        }
        Ok(Classification { label, density })
    }

    /// The plans a warm publish should pre-populate, in deterministic
    /// order: every occupied cell (coordinate-sorted) first — a query
    /// landing in any of them then never builds a plan cold — followed,
    /// budget permitting, by the unoccupied cells of their immediate
    /// lattice neighbourhood, whose window-candidate search is the
    /// expensive half of a cold unoccupied-cell classify. At most
    /// `budget` plans are returned (occupied cells take precedence), so
    /// a bounded LRU is never asked to evict its own warm set.
    pub fn warm_plans(&self, budget: usize) -> Vec<(CellCoord, CellPlan)> {
        let mut occupied: Vec<CellCoord> = self
            .shards
            .iter()
            .flat_map(|s| s.records.iter().flatten().map(|r| r.coord.clone()))
            .collect();
        occupied.sort_unstable();
        let mut out: Vec<(CellCoord, CellPlan)> = occupied
            .iter()
            .take(budget)
            .map(|c| (c.clone(), self.plan_for(c)))
            .collect();
        // Neighbourhood warming only pays while the 3^d halo is small
        // relative to the budget headroom; high dimensions skip it.
        let dim = self.spec.dim();
        let halo_feasible = 3usize.checked_pow(dim as u32).is_some_and(|w| w <= 1 << 12);
        if out.len() < budget && halo_feasible {
            let mut halo: std::collections::BTreeSet<CellCoord> = std::collections::BTreeSet::new();
            let mut cand = Vec::with_capacity(dim);
            for c in &occupied {
                let mut offs = vec![-1i64; dim];
                loop {
                    cand.clear();
                    cand.extend(c.coords().iter().zip(offs.iter()).map(|(&x, &o)| x + o));
                    let cc = CellCoord::new(cand.iter().copied());
                    if self.find_cell(&cc).is_none() {
                        halo.insert(cc);
                    }
                    let mut d = dim;
                    loop {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                        if offs[d] < 1 {
                            offs[d] += 1;
                            break;
                        }
                        offs[d] = -1;
                    }
                    if offs.iter().all(|&o| o == -1) {
                        break;
                    }
                }
            }
            for c in halo {
                if out.len() >= budget {
                    break;
                }
                let plan = self.plan_for(&c);
                out.push((c, plan));
            }
        }
        out
    }

    /// The warm set for an incremental publish: plans only for the
    /// occupied cells the patch invalidated (every other cell's plan is
    /// carried over by the server), coordinate-sorted, at most `budget`.
    /// Falls back to the full [`Self::warm_plans`] sweep when the index
    /// is not a patch or the patch could not bound its invalidation set.
    pub fn warm_plans_invalidated(&self, budget: usize) -> Vec<(CellCoord, CellPlan)> {
        let Some(summary) = self.patch.as_ref().filter(|p| p.can_carry()) else {
            return self.warm_plans(budget);
        };
        let mut coords: Vec<CellCoord> = self
            .shards
            .iter()
            .flat_map(|s| s.cells.keys())
            .filter(|c| summary.invalidates(c.as_ref()))
            .map(|c| CellCoord::clone(c))
            .collect();
        coords.sort_unstable();
        coords.truncate(budget);
        coords
            .into_iter()
            .map(|c| {
                let plan = self.plan_for(&c);
                (c, plan)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_hashes_are_stable_and_in_range() {
        for k in [1usize, 2, 4, 7] {
            for i in 0..64u32 {
                assert!(shard_of_point(i, k) < k);
            }
            for x in -8i64..8 {
                for y in -8i64..8 {
                    let c = CellCoord::new([x, y]);
                    assert!(shard_of_cell(&c, k) < k);
                    assert_eq!(shard_of_cell(&c, k), shard_of_cell(&c.clone(), k));
                }
            }
        }
    }

    #[test]
    fn cells_spread_over_shards() {
        let coords: Vec<CellCoord> = (0..100)
            .map(|i| CellCoord::new([i as i64 % 10, i as i64 / 10]))
            .collect();
        let mut used = [false; 4];
        for c in &coords {
            used[shard_of_cell(c, 4)] = true;
        }
        assert!(used.iter().all(|&u| u), "all 4 shards take cells");
    }
}
