//! The serving front-end: micro-batched, shard-routed query execution.
//!
//! A [`Server`] accepts requests into a bounded queue ([`Server::submit`]
//! rejects with [`ServeError::Overloaded`] when full — back-pressure at
//! admission, never unbounded memory), then [`Server::drain`] executes
//! everything queued as one micro-batch on the execution engine's
//! worker pool: requests are grouped by kind and target shard, each
//! group becomes one engine task, and classify requests reuse memoised
//! [`CellPlan`](crate::CellPlan)s from a generation-aware LRU. Every
//! batch resolves against a single `Arc<ServingIndex>` loaded once from
//! the hot-swap slot, so all requests of a batch observe one epoch.
//!
//! Latency percentiles come from the engine's per-task measurements
//! (`StageMetrics::task_durations`) — the serving path itself never
//! reads a clock, preserving the workspace's determinism discipline.

use crate::cache::PlanLru;
use crate::index::{CellPlan, Classification, ClusterStats, ServingIndex};
use crate::swap::IndexSlot;
use crate::ServeError;
use rpdbscan_engine::{Engine, TaskError};
use rpdbscan_grid::{CellCoord, FxHashMap};
use rpdbscan_metrics::LatencyHistogram;
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum queued requests before [`Server::submit`] rejects with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum memoised classify cell plans.
    pub cache_capacity: usize,
    /// Pre-populate the plan cache when a new index generation is
    /// published through this server (including construction): every
    /// occupied cell's plan — plus, budget permitting, the unoccupied
    /// halo's window candidate lists — is built once at publish time
    /// instead of cold on first query. Default `true`; turn off to
    /// measure the cold-publish baseline.
    pub warm_on_publish: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            cache_capacity: 256,
            warm_on_publish: true,
        }
    }
}

/// A serving request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stored label of an indexed point.
    LabelOf(u32),
    /// Classify a fresh coordinate (Phase III border rules).
    Classify(Vec<f64>),
    /// Size summary of a cluster.
    ClusterStats(u32),
}

/// A serving response, mirroring the [`Request`] variants.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Some(label)` for indexed points (`label` is `None` for noise),
    /// `None` for ids the index has never seen.
    Label(Option<Option<u32>>),
    /// The classification of the queried coordinate.
    Classified(Classification),
    /// `None` when the cluster id does not exist.
    Stats(Option<ClusterStats>),
}

/// Request kind: the first half of the (kind, shard) task-routing key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Kind {
    Label,
    Classify,
    Stats,
}

/// A queued request with its admission-order ticket.
#[derive(Debug)]
struct QueueState {
    next_ticket: u64,
    items: VecDeque<(u64, Request)>,
}

/// A request resolved to its execution form: shard routing done, plans
/// attached.
#[derive(Debug, Clone)]
enum Prepared {
    Label(u32),
    Classify(Vec<f64>, Arc<CellPlan>),
    Stats(u32),
}

/// Aggregate serving counters and latency histograms.
#[derive(Debug, Clone, Default)]
pub struct ServerStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests answered.
    pub served: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plans pre-built into the cache by warm publishes.
    pub plans_warmed: u64,
    /// Plans carried across delta publishes without a rebuild (the
    /// patch proved their cells' ε-windows untouched).
    pub plans_carried: u64,
    /// Per-task latencies of `LabelOf` micro-batch tasks, seconds.
    pub label_of: LatencyHistogram,
    /// Per-task latencies of `Classify` micro-batch tasks, seconds.
    pub classify: LatencyHistogram,
    /// Per-task latencies of `ClusterStats` micro-batch tasks, seconds.
    pub cluster_stats: LatencyHistogram,
}

/// Mutable half of [`ServerStats`] (cache counters live in the LRU).
#[derive(Debug, Default)]
struct StatsInner {
    submitted: u64,
    rejected: u64,
    batches: u64,
    served: u64,
    plans_warmed: u64,
    plans_carried: u64,
    label_of: LatencyHistogram,
    classify: LatencyHistogram,
    cluster_stats: LatencyHistogram,
}

/// The serving front-end over one hot-swappable index slot.
#[derive(Debug)]
pub struct Server {
    engine: Engine,
    slot: Arc<IndexSlot>,
    config: ServerConfig,
    queue: Mutex<QueueState>,
    cache: Mutex<PlanLru>,
    stats: Mutex<StatsInner>,
}

/// Resolves the classify plan for one cell within a drained micro-batch.
///
/// The first request landing in a cell takes exactly one LRU access — a
/// hit, or a miss plus a cold build — and parks the plan in `gathered`;
/// every later request of the same batch in the same cell shares it
/// without touching the LRU. Grouping the gather by cell keeps a burst
/// of queries into one hot cell at one cache probe per batch.
// lint:hot
fn gather_plan(
    index: &ServingIndex,
    cache: &mut PlanLru,
    gathered: &mut FxHashMap<CellCoord, Arc<CellPlan>>,
    coord: &CellCoord,
) -> Arc<CellPlan> {
    if let Some(p) = gathered.get(coord) {
        return Arc::clone(p);
    }
    let plan = match cache.get(coord) {
        Some(p) => p,
        None => {
            let p = Arc::new(index.plan_for(coord));
            cache.insert(coord.clone(), Arc::clone(&p));
            p
        }
    };
    gathered.insert(coord.clone(), Arc::clone(&plan));
    plan
}

/// Submit-time shape check for classify coordinates.
fn validate_query(index: &ServingIndex, q: &[f64]) -> Result<(), ServeError> {
    if q.len() != index.dim() {
        return Err(ServeError::DimensionMismatch {
            expected: index.dim(),
            got: q.len(),
        });
    }
    if q.iter().any(|v| !v.is_finite()) {
        return Err(ServeError::NonFinite);
    }
    Ok(())
}

impl Server {
    /// A server initially publishing `index`, executing on `engine`.
    pub fn new(engine: Engine, index: Arc<ServingIndex>, config: ServerConfig) -> Self {
        Self::from_slot(engine, Arc::new(IndexSlot::new(index)), config)
    }

    /// A server over an externally shared hot-swap slot (the streaming
    /// publisher holds the other reference).
    pub fn from_slot(engine: Engine, slot: Arc<IndexSlot>, config: ServerConfig) -> Self {
        let cache_capacity = config.cache_capacity;
        let server = Self {
            engine,
            slot,
            config,
            queue: Mutex::new(QueueState {
                next_ticket: 0,
                items: VecDeque::new(),
            }),
            cache: Mutex::new(PlanLru::new(cache_capacity)),
            stats: Mutex::new(StatsInner::default()),
        };
        let initial = server.slot.load();
        server.warm_cache(&initial);
        server
    }

    /// The engine executing the micro-batches.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The shared hot-swap slot, for external publishers.
    pub fn slot(&self) -> Arc<IndexSlot> {
        Arc::clone(&self.slot)
    }

    /// The currently published index.
    pub fn index(&self) -> Arc<ServingIndex> {
        self.slot.load()
    }

    /// Publishes a new index generation unconditionally, pre-populating
    /// the plan cache for it when `warm_on_publish` is set.
    pub fn publish(&self, index: Arc<ServingIndex>) -> u64 {
        let generation = self.slot.publish(Arc::clone(&index));
        self.warm_cache(&index);
        generation
    }

    /// Publishes a new index generation unless it is not newer than the
    /// current one; returns whether the swap happened. A successful swap
    /// warms the plan cache like [`Self::publish`].
    pub fn publish_if_newer(&self, index: Arc<ServingIndex>) -> bool {
        let swapped = self.slot.publish_if_newer(Arc::clone(&index));
        if swapped {
            self.warm_cache(&index);
        }
        swapped
    }

    /// Pre-populates the plan cache for `index`'s generation: re-scopes
    /// the LRU, then inserts every plan the index yields under the
    /// cache-capacity budget. Inserts bypass the hit/miss counters, so a
    /// warm publish leaves the miss count at zero — the property the
    /// warm-publish unit test pins.
    ///
    /// When `index` was produced by a delta publish patched directly on
    /// top of the generation this cache is scoped to, the plans of cells
    /// the patch proved untouched are *carried* instead of rebuilt
    /// ([`PlanLru::carry_forward`]) and only the invalidated ε-window is
    /// rewarmed ([`ServingIndex::warm_plans_invalidated`]).
    fn warm_cache(&self, index: &ServingIndex) {
        if !self.config.warm_on_publish {
            return;
        }
        let carried: Option<u64> = {
            let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
            match index.patch_summary() {
                Some(p) if p.can_carry() && cache.generation() == p.base_generation() => {
                    Some(cache.carry_forward(index.generation(), |c| !p.invalidates(c)) as u64)
                }
                _ => None,
            }
        };
        let warmed = if carried.is_some() {
            index.warm_plans_invalidated(self.config.cache_capacity)
        } else {
            index.warm_plans(self.config.cache_capacity)
        };
        let count = warmed.len() as u64;
        {
            let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
            cache.reset_for_generation(index.generation());
            for (coord, plan) in warmed {
                cache.insert(coord, Arc::new(plan));
            }
        }
        let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        stats.plans_warmed += count;
        stats.plans_carried += carried.unwrap_or(0);
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    /// Admits one request, returning its ticket, or rejects it when the
    /// queue is at capacity. Classify coordinates are shape-checked here
    /// so malformed requests fail at admission, not mid-batch.
    pub fn submit(&self, req: Request) -> Result<u64, ServeError> {
        if let Request::Classify(q) = &req {
            validate_query(&self.slot.load(), q)?;
        }
        let ticket = {
            let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            if queue.items.len() >= self.config.queue_capacity {
                drop(queue);
                self.stats
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .rejected += 1;
                return Err(ServeError::Overloaded {
                    capacity: self.config.queue_capacity,
                });
            }
            let t = queue.next_ticket;
            queue.next_ticket += 1;
            queue.items.push_back((t, req));
            t
        };
        self.stats
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .submitted += 1;
        Ok(ticket)
    }

    /// Executes everything queued as one micro-batch and returns
    /// `(ticket, response)` pairs in ticket order. The whole batch runs
    /// against the single index generation current at drain time.
    pub fn drain(&self) -> Result<Vec<(u64, Response)>, ServeError> {
        let pending: Vec<(u64, Request)> = {
            let mut queue = self.queue.lock().unwrap_or_else(|p| p.into_inner());
            queue.items.drain(..).collect()
        };
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        let index = self.slot.load();

        // Route each request to its (kind, shard) task, resolving
        // classify plans through the generation-aware LRU up front —
        // amortised per *cell*, not per request: `gathered` holds each
        // distinct cell's plan for the duration of this batch.
        let mut groups: BTreeMap<(Kind, u32), Vec<(u64, Prepared)>> = BTreeMap::new();
        {
            let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
            cache.reset_for_generation(index.generation());
            let mut gathered: FxHashMap<CellCoord, Arc<CellPlan>> = FxHashMap::default();
            for (ticket, req) in pending {
                let (key, prepared) = match req {
                    Request::LabelOf(id) => {
                        ((Kind::Label, index.shard_of_id(id)), Prepared::Label(id))
                    }
                    Request::Classify(q) => {
                        let coord = index.spec().cell_of(&q);
                        let plan = gather_plan(&index, &mut cache, &mut gathered, &coord);
                        (
                            (Kind::Classify, index.shard_of_coord(&coord)),
                            Prepared::Classify(q, plan),
                        )
                    }
                    Request::ClusterStats(c) => (
                        (Kind::Stats, c % index.num_shards().max(1) as u32),
                        Prepared::Stats(c),
                    ),
                };
                groups.entry(key).or_default().push((ticket, prepared));
            }
        }
        let inputs: Vec<(Kind, Vec<(u64, Prepared)>)> =
            groups.into_iter().map(|((k, _), v)| (k, v)).collect();
        let kinds: Vec<Kind> = inputs.iter().map(|(k, _)| *k).collect();

        let batch_no = {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.batches += 1;
            stats.batches
        };
        let idx = &index;
        let result = self.engine.run_stage(
            &format!("serve:batch-{batch_no}"),
            inputs,
            |_ctx, (_kind, items): (Kind, Vec<(u64, Prepared)>)| {
                let mut out = Vec::with_capacity(items.len());
                for (ticket, p) in items {
                    let resp = match p {
                        Prepared::Label(id) => Response::Label(idx.label_of(id)),
                        Prepared::Classify(q, plan) => Response::Classified(
                            idx.classify_with(&plan, &q)
                                .map_err(|e| TaskError::new(format!("classify failed: {e}")))?,
                        ),
                        Prepared::Stats(c) => Response::Stats(idx.cluster_stats(c).cloned()),
                    };
                    out.push((ticket, resp));
                }
                Ok(out)
            },
        )?;

        let mut responses: Vec<(u64, Response)> = Vec::new();
        {
            let mut stats = self.stats.lock().unwrap_or_else(|p| p.into_inner());
            for (i, out) in result.outputs.into_iter().enumerate() {
                let d = result.metrics.task_durations.get(i).copied().unwrap_or(0.0);
                match kinds.get(i) {
                    Some(Kind::Label) => stats.label_of.record(d),
                    Some(Kind::Classify) => stats.classify.record(d),
                    Some(Kind::Stats) | None => stats.cluster_stats.record(d),
                }
                stats.served += out.len() as u64;
                responses.extend(out);
            }
        }
        responses.sort_unstable_by_key(|&(t, _)| t);
        Ok(responses)
    }

    /// Convenience: submits `reqs` and drains, returning responses in
    /// the order the requests were given. Fails fast on admission
    /// rejection.
    pub fn execute(&self, reqs: Vec<Request>) -> Result<Vec<Response>, ServeError> {
        let mut tickets = Vec::with_capacity(reqs.len());
        for r in reqs {
            tickets.push(self.submit(r)?);
        }
        let mut by_ticket: FxHashMap<u64, Response> = self.drain()?.into_iter().collect();
        Ok(tickets
            .into_iter()
            .filter_map(|t| by_ticket.remove(&t))
            .collect())
    }

    /// A snapshot of the serving counters and latency histograms.
    pub fn stats(&self) -> ServerStats {
        let inner = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        let cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
        ServerStats {
            submitted: inner.submitted,
            rejected: inner.rejected,
            batches: inner.batches,
            served: inner.served,
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            plans_warmed: inner.plans_warmed,
            plans_carried: inner.plans_carried,
            label_of: inner.label_of.clone(),
            classify: inner.classify.clone(),
            cluster_stats: inner.cluster_stats.clone(),
        }
    }
}
