//! Incremental publish: copy-on-write shard patching.
//!
//! [`ServingIndex::patch_from_stream`] builds the next index generation
//! from the previous one plus the stream's per-epoch delta, instead of
//! rebuilding every shard from a full export. The dirty set is
//! [`StreamingRpDbscan::dirty_cells_since`]: every cell whose exported
//! record changed in any epoch after the base generation — structural
//! changes (membership, core set, predecessors, sub-cell summaries),
//! cells emptied entirely, and cells whose cluster id moved (the
//! stream's sticky renumbering stamps exactly the ids that moved, so no
//! per-record rescan is needed here).
//!
//! Shards none of whose cells are dirty are `Arc`-shared with the base
//! generation wholesale; a patched shard clones its row table (`Arc`
//! pointer copies) and rebuilds only the dirty rows, keeping every
//! surviving cell's row number stable. Row stability is what makes the
//! plan-cache carry-over sound: a [`CellPlan`](crate::CellPlan) only
//! references cells within ε of its home cell, so a plan whose ε-window
//! contains no dirty cell resolves against the patched index exactly as
//! it did against the base — the [`PatchSummary`] exports that window
//! (`invalidates`) and the server carries everything outside it.

use crate::index::{shard_of_cell, shard_of_point, CellSeed, LabelShard};
use crate::index::{ServingIndex, Shard};
use crate::ServeError;
use rpdbscan_grid::{CellCoord, FxHashMap, FxHashSet, GridSpec};
use rpdbscan_stream::StreamingRpDbscan;
use std::sync::Arc;

/// How an incremental publish ([`ServingIndex::patch_from_stream`])
/// differed from its base generation.
#[derive(Debug, Clone)]
pub struct PatchSummary {
    base_generation: u64,
    patched_shards: usize,
    shared_shards: usize,
    patched_label_shards: usize,
    shared_label_shards: usize,
    rebuilt_cells: usize,
    removed_cells: usize,
    /// Hashes of every *super-cell* (a `(b+1)`-cell-wide lattice block,
    /// `b` the candidate-window offset bound) overlapping the ε-window
    /// of a dirty cell: a conservative, cache-resident stand-in for the
    /// exact invalidation set. A plan is invalidated when its home
    /// cell's super-cell is marked — possibly a false positive (the
    /// super-cell is coarser than ε, and a 64-bit hash can collide),
    /// never a false negative, so carrying the rest is sound. `None`
    /// when even the super enumeration was infeasible (high dimension ×
    /// many dirty cells), in which case every plan counts as
    /// invalidated.
    invalid: Option<FxHashSet<u64>>,
}

impl PatchSummary {
    /// Generation of the index this patch was built against.
    pub fn base_generation(&self) -> u64 {
        self.base_generation
    }

    /// Cell shards rebuilt because at least one of their cells changed.
    pub fn patched_shards(&self) -> usize {
        self.patched_shards
    }

    /// Cell shards `Arc`-shared with the base generation untouched.
    pub fn shared_shards(&self) -> usize {
        self.shared_shards
    }

    /// Label shards rebuilt because at least one row changed.
    pub fn patched_label_shards(&self) -> usize {
        self.patched_label_shards
    }

    /// Label shards `Arc`-shared with the base generation untouched.
    pub fn shared_label_shards(&self) -> usize {
        self.shared_label_shards
    }

    /// Cell records rebuilt (inserted or updated).
    pub fn rebuilt_cells(&self) -> usize {
        self.rebuilt_cells
    }

    /// Cell records tombstoned (their cell was emptied).
    pub fn removed_cells(&self) -> usize {
        self.removed_cells
    }

    /// Whether a plan homed at `coord` must be rebuilt: true whenever
    /// some dirty cell lies within ε of `coord`'s box, conservatively
    /// true for some nearby cells beyond ε (super-cell granularity),
    /// and true for everything when the window was infeasible.
    pub fn invalidates(&self, coord: &CellCoord) -> bool {
        self.invalid.as_ref().is_none_or(|s| {
            let w = super_width(coord.coords().len());
            s.contains(&fnv64(coord.coords().iter().map(|&c| c.div_euclid(w))))
        })
    }

    /// Whether the patch bounded its invalidation set — when false,
    /// every cached plan counts as invalidated and nothing is carried.
    pub fn can_carry(&self) -> bool {
        self.invalid.is_some()
    }
}

/// Rebuilds the dirty rows of one shard on top of the base generation's
/// row table. Everything untouched is an `Arc` pointer copy; surviving
/// cells keep their rows, emptied cells leave tombstones on the free
/// list, new cells fill freed rows first. Returns the patched shard and
/// its `(rebuilt, removed)` row counts; every record swap's cluster
/// contribution (core cells and core points, signed) is appended to
/// `deltas` so the publish can adjust the base cluster stats instead of
/// re-folding every record.
// lint:hot
fn patch_shard(
    base: &Shard,
    dirty: &[&CellCoord],
    stream: &StreamingRpDbscan,
    spec: &GridSpec,
    generation: u64,
    scratch: &mut [f64],
    deltas: &mut Vec<(u32, i64, i64)>,
) -> (Shard, usize, usize) {
    let dim = spec.dim();
    let contribution = |rec: &crate::index::CellRecord, sign: i64| {
        rec.cluster
            .map(|c| (c, sign, sign * (rec.core.len() / dim) as i64))
    };
    let mut cells = base.cells.clone();
    let mut records = base.records.clone();
    let mut free = base.free.clone();
    let mut rebuilt = 0usize;
    let mut removed = 0usize;
    let dict = stream.dictionary();
    for &coord in dirty {
        match stream.export_cell(coord) {
            Some(export) => {
                rebuilt += 1;
                let subs = dict.get(coord).map(|c| c.subs.clone()).unwrap_or_default();
                let seed = CellSeed {
                    coord: export.coord,
                    cluster: export.cluster,
                    preds: export.preds,
                    core: export.core_coords,
                    subs,
                };
                let rec = Arc::new(seed.into_record(spec, scratch));
                deltas.extend(contribution(&rec, 1));
                match cells.get(coord) {
                    Some(&row) => {
                        if let Some(old) = &records[row as usize] {
                            deltas.extend(contribution(old, -1));
                        }
                        records[row as usize] = Some(rec);
                    }
                    None => {
                        let row = match free.pop() {
                            Some(r) => {
                                records[r as usize] = Some(rec);
                                r
                            }
                            None => {
                                records.push(Some(rec));
                                (records.len() - 1) as u32
                            }
                        };
                        cells.insert(Arc::new(coord.clone()), row);
                    }
                }
            }
            None => {
                if let Some(row) = cells.remove(coord) {
                    removed += 1;
                    if let Some(old) = &records[row as usize] {
                        deltas.extend(contribution(old, -1));
                    }
                    records[row as usize] = None;
                    free.push(row);
                }
            }
        }
    }
    (
        Shard {
            cells,
            records,
            free,
            built: generation,
        },
        rebuilt,
        removed,
    )
}

/// One shard's contribution to a patched generation: the (possibly
/// shared) cell and label shards plus the signed cluster-stat deltas
/// the publish folds into the base totals.
struct ShardPatch {
    shard: Arc<Shard>,
    rebuilt: usize,
    removed: usize,
    /// `(cluster, Δcore_cells, Δcore_points)` per record swap.
    record_deltas: Vec<(u32, i64, i64)>,
    label: Arc<LabelShard>,
    label_patched: bool,
    /// `(cluster, Δpoints)` per effective label row change.
    label_deltas: Vec<(u32, i64)>,
}

/// Super-cell width: `b + 1` lattice cells per dimension, where
/// `b = 1 + ⌈√d⌉` is the candidate-window offset bound (a cell within ε
/// of another is at most `b` lattice steps away per dimension).
fn super_width(dim: usize) -> i64 {
    2 + (dim as f64).sqrt().ceil() as i64
}

/// FNV-1a over a sequence of i64 values (LE bytes) — the super-cell
/// hash. Streaming, so callers never materialise the super coordinate.
fn fnv64(vals: impl Iterator<Item = i64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in vals {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Hashes of every super-cell overlapping the `±b` lattice window of a
/// dirty cell — a conservative cover of the plans a patch invalidates.
/// `None` when even this enumeration would be unreasonably large;
/// callers then invalidate everything.
///
/// Exact per-cell enumeration of the ε-window (`(2b+1)^d` candidates per
/// dirty cell) builds a set so large that populating it dominates the
/// whole patch; super-cell granularity needs at most `3^d` marks per
/// dirty cell (the window spans ≤ 3 supers per dimension), the set stays
/// small enough to live in cache, and coarseness only ever
/// over-invalidates — the publish-time warm sweep rebuilds the few extra
/// plans, correctness never depends on the window being tight.
fn invalidated_supers(spec: &GridSpec, dirty: &[CellCoord]) -> Option<FxHashSet<u64>> {
    let dim = spec.dim();
    let b = 1 + (dim as f64).sqrt().ceil() as i64;
    let w = super_width(dim);
    let per_cell = 3i64.checked_pow(dim as u32)?;
    let total = per_cell.checked_mul(dirty.len() as i64)?;
    if total > 1 << 20 {
        return None;
    }
    let mut out = FxHashSet::default();
    let mut lo = vec![0i64; dim];
    let mut hi = vec![0i64; dim];
    let mut cur = vec![0i64; dim];
    for c in dirty {
        for (i, &x) in c.coords().iter().enumerate() {
            lo[i] = (x - b).div_euclid(w);
            hi[i] = (x + b).div_euclid(w);
        }
        cur.copy_from_slice(&lo);
        'enumerate: loop {
            out.insert(fnv64(cur.iter().copied()));
            for i in 0..dim {
                if cur[i] < hi[i] {
                    cur[i] += 1;
                    continue 'enumerate;
                }
                cur[i] = lo[i];
            }
            break;
        }
    }
    Some(out)
}

impl ServingIndex {
    /// Builds the stream's current epoch as an incremental patch of
    /// `prev` instead of a full rebuild: only the cells that changed
    /// since `prev`'s generation are re-exported and re-frozen; every
    /// shard without a dirty cell is `Arc`-shared with `prev`
    /// wholesale. The result is bit-for-bit equivalent to
    /// [`ServingIndex::from_stream`] at the same epoch — same labels,
    /// same classify results, same cluster stats — which the serve
    /// equivalence suite pins.
    ///
    /// `prev` must be an earlier generation of *this same stream* (built
    /// by `from_stream` or a previous patch): the delta accounting is
    /// relative to `prev.generation()` as a stream epoch. A base from a
    /// different grid is rejected with [`ServeError::PatchGridMismatch`];
    /// a base not strictly older than the stream's epoch with
    /// [`ServeError::PatchNotNewer`].
    pub fn patch_from_stream(
        prev: &Arc<ServingIndex>,
        stream: &StreamingRpDbscan,
    ) -> Result<Self, ServeError> {
        let spec = stream.spec();
        // Bitwise float equality on purpose, as in the dictionary
        // compatibility check: any difference means a different grid.
        let same_grid = prev.spec.dim() == spec.dim()
            && prev.spec.eps().to_bits() == spec.eps().to_bits()
            && prev.spec.rho().to_bits() == spec.rho().to_bits();
        if !same_grid {
            return Err(ServeError::PatchGridMismatch);
        }
        let generation = stream.epoch();
        if prev.generation >= generation {
            return Err(ServeError::PatchNotNewer {
                base: prev.generation,
                epoch: generation,
            });
        }

        // Dirty set: structural deltas since the base epoch. Cluster-id
        // movements are already stamped by the stream's sticky
        // renumbering, so this covers id churn too without rescanning
        // every record.
        let mut dirty = stream.dirty_cells_since(prev.generation);
        dirty.sort_unstable();
        dirty.dedup();

        let k = prev.shards.len();
        let mut dirty_by_shard: Vec<Vec<&CellCoord>> = vec![Vec::new(); k];
        for c in &dirty {
            dirty_by_shard[shard_of_cell(c, k)].push(c);
        }

        // Label delta: the fast path patches the base label maps with
        // only the rows that can have moved — points in dirty cells,
        // border points whose winning core cell is dirty, explicit
        // border-label moves, and removed slots. When the stream's
        // per-epoch deltas no longer reach back to the base generation,
        // fall back to a full row export compared shard-by-shard.
        let label_delta = match (
            stream.removed_since(prev.generation),
            stream.label_moves_since(prev.generation),
        ) {
            (Some(removed), Some(moves)) => {
                let mut cell_rows: Vec<(u32, Option<u32>)> = Vec::new();
                for c in &dirty {
                    stream.cell_label_rows(c, &mut cell_rows);
                }
                let mut updates: FxHashMap<u32, Option<u32>> = cell_rows.into_iter().collect();
                let dirty_set: FxHashSet<&CellCoord> = dirty.iter().collect();
                for (p, winner) in stream.border_winners() {
                    if dirty_set.contains(winner) {
                        updates
                            .entry(p)
                            .or_insert_with(|| stream.cell_cluster(winner));
                    }
                }
                let mut deletions: Vec<u32> = Vec::new();
                for p in moves.into_iter().chain(removed) {
                    if let std::collections::hash_map::Entry::Vacant(e) = updates.entry(p) {
                        match stream.label_of_point(p) {
                            Some(label) => {
                                e.insert(label);
                            }
                            // A dead slot: either a recorded removal, or
                            // a border move whose point was since
                            // removed. Dropping the row is right for
                            // both (removing an absent key is a no-op).
                            None => deletions.push(p),
                        }
                    }
                }
                Some((updates, deletions))
            }
            _ => None,
        };
        let fast = label_delta.is_some();
        let mut upd_by_shard: Vec<Vec<(u32, Option<u32>)>> = vec![Vec::new(); k];
        let mut del_by_shard: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut rows_by_shard: Vec<Vec<(u32, Option<u32>)>> = vec![Vec::new(); k];
        match label_delta {
            Some((updates, deletions)) => {
                // lint:allow(unordered-iter): per-shard update lists feed id-keyed maps and signed stat deltas, so order is immaterial
                for (id, l) in updates {
                    upd_by_shard[shard_of_point(id, k)].push((id, l));
                }
                for id in deletions {
                    del_by_shard[shard_of_point(id, k)].push(id);
                }
            }
            None => {
                for (id, l) in stream.export_label_rows() {
                    rows_by_shard[shard_of_point(id, k)].push((id, l));
                }
            }
        }

        // Per-shard patching is embarrassingly parallel — cells and
        // label rows are hash-partitioned — and at small batch fractions
        // the publish is latency-critical, so on multicore hosts each
        // shard gets a scoped worker. Results are joined in shard order,
        // making the assembled index identical to a serial pass.
        let worker = |s: usize| -> ShardPatch {
            let base = &prev.shards[s];
            let mut record_deltas: Vec<(u32, i64, i64)> = Vec::new();
            let (shard, rebuilt, removed) = if dirty_by_shard[s].is_empty() {
                (Arc::clone(base), 0, 0)
            } else {
                let mut scratch = vec![0.0; spec.dim()];
                let (sh, rb, rm) = patch_shard(
                    base,
                    &dirty_by_shard[s],
                    stream,
                    spec,
                    generation,
                    &mut scratch,
                    &mut record_deltas,
                );
                (Arc::new(sh), rb, rm)
            };
            let lbase = &prev.label_shards[s];
            let mut label_deltas: Vec<(u32, i64)> = Vec::new();
            let (label, label_patched) = if fast {
                let upd = &upd_by_shard[s];
                let del = &del_by_shard[s];
                let mut changed = false;
                for (id, l) in upd {
                    let old = lbase.labels.get(id);
                    if old != Some(l) {
                        changed = true;
                        if let Some(Some(c)) = old {
                            label_deltas.push((*c, -1));
                        }
                        if let Some(c) = l {
                            label_deltas.push((*c, 1));
                        }
                    }
                }
                for id in del {
                    if let Some(Some(c)) = lbase.labels.get(id) {
                        label_deltas.push((*c, -1));
                    }
                    changed |= lbase.labels.contains_key(id);
                }
                if !changed {
                    (Arc::clone(lbase), false)
                } else {
                    let mut labels = lbase.labels.clone();
                    for &(id, l) in upd {
                        labels.insert(id, l);
                    }
                    for id in del {
                        labels.remove(id);
                    }
                    (
                        Arc::new(LabelShard {
                            labels,
                            built: generation,
                        }),
                        true,
                    )
                }
            } else {
                // Fallback: share iff every row the shard would hold
                // matches the base's map exactly.
                let mine = &rows_by_shard[s];
                let unchanged = mine.len() == lbase.labels.len()
                    && mine
                        .iter()
                        .all(|(id, l)| lbase.labels.get(id).is_some_and(|p| p == l));
                if unchanged {
                    (Arc::clone(lbase), false)
                } else {
                    let labels: FxHashMap<u32, Option<u32>> = mine.iter().copied().collect();
                    (
                        Arc::new(LabelShard {
                            labels,
                            built: generation,
                        }),
                        true,
                    )
                }
            };
            ShardPatch {
                shard,
                rebuilt,
                removed,
                record_deltas,
                label,
                label_patched,
                label_deltas,
            }
        };
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let results: Vec<ShardPatch> = if cores > 1 && k > 1 {
            // lint:allow(thread-discipline): shard workers are pure functions over frozen inputs joined before return; the publish path must stay runnable without an engine instance
            std::thread::scope(|sc| {
                let worker = &worker;
                let handles: Vec<_> = (0..k).map(|s| sc.spawn(move || worker(s))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard patch worker panicked")) // lint:allow(panic-safety): workers only read frozen state and build new records; a panic there is a bug worth surfacing, not absorbing
                    .collect()
            })
        } else {
            (0..k).map(worker).collect()
        };

        let mut shards = Vec::with_capacity(k);
        let mut label_shards = Vec::with_capacity(k);
        let mut patched_shards = 0usize;
        let mut rebuilt_cells = 0usize;
        let mut removed_cells = 0usize;
        let mut patched_label_shards = 0usize;
        let mut record_deltas: Vec<(u32, i64, i64)> = Vec::new();
        let mut label_deltas: Vec<(u32, i64)> = Vec::new();
        for (s, out) in results.into_iter().enumerate() {
            if !dirty_by_shard[s].is_empty() {
                patched_shards += 1;
            }
            rebuilt_cells += out.rebuilt;
            removed_cells += out.removed;
            record_deltas.extend(out.record_deltas);
            shards.push(out.shard);
            if out.label_patched {
                patched_label_shards += 1;
            }
            label_deltas.extend(out.label_deltas);
            label_shards.push(out.label);
        }

        let dim = spec.dim();
        let clusters = if fast {
            // Adjust the base stats by the signed per-record and
            // per-row deltas — integer adds, so the totals land exactly
            // where a from-scratch fold would.
            let mut clusters = prev.clusters.clone();
            let ensure = |clusters: &mut Vec<crate::ClusterStats>, c: u32| {
                while clusters.len() <= c as usize {
                    clusters.push(crate::ClusterStats {
                        cluster: clusters.len() as u32,
                        points: 0,
                        core_points: 0,
                        core_cells: 0,
                    });
                }
            };
            for (c, d_cells, d_points) in record_deltas {
                ensure(&mut clusters, c);
                let entry = &mut clusters[c as usize];
                entry.core_cells = (entry.core_cells as i64 + d_cells) as usize;
                entry.core_points = (entry.core_points as i64 + d_points) as usize;
            }
            for (c, d) in label_deltas {
                ensure(&mut clusters, c);
                let entry = &mut clusters[c as usize];
                entry.points = (entry.points as i64 + d) as usize;
            }
            // A full build sizes the vector to the highest id present in
            // any record or row; a vanished tail cluster has all-zero
            // counts, so trimming zero tails reproduces that bound.
            while clusters
                .last()
                .is_some_and(|c| c.points == 0 && c.core_points == 0 && c.core_cells == 0)
            {
                clusters.pop();
            }
            clusters
        } else {
            // Fallback: re-fold from the assembled shards and rows,
            // exactly as the full build does.
            let num_clusters = shards
                .iter()
                .flat_map(|s| s.records.iter().flatten().filter_map(|r| r.cluster))
                .chain(
                    rows_by_shard
                        .iter()
                        .flatten()
                        .filter_map(|&(_, label)| label),
                )
                .map(|c| c as usize + 1)
                .max()
                .unwrap_or(0);
            let mut clusters: Vec<crate::ClusterStats> = (0..num_clusters)
                .map(|c| crate::ClusterStats {
                    cluster: c as u32,
                    points: 0,
                    core_points: 0,
                    core_cells: 0,
                })
                .collect();
            for shard in &shards {
                for rec in shard.records.iter().flatten() {
                    if let Some(c) = rec.cluster {
                        clusters[c as usize].core_cells += 1;
                        clusters[c as usize].core_points += rec.core.len() / dim;
                    }
                }
            }
            for &(_, label) in rows_by_shard.iter().flatten() {
                if let Some(c) = label {
                    clusters[c as usize].points += 1;
                }
            }
            clusters
        };
        let num_points = label_shards.iter().map(|l| l.labels.len()).sum();

        let summary = PatchSummary {
            base_generation: prev.generation,
            patched_shards,
            shared_shards: k - patched_shards,
            patched_label_shards,
            shared_label_shards: k - patched_label_shards,
            rebuilt_cells,
            removed_cells,
            invalid: invalidated_supers(spec, &dirty),
        };

        Ok(Self {
            spec: spec.clone(),
            eps2: prev.eps2,
            backend: prev.backend,
            generation,
            shards,
            label_shards,
            clusters,
            num_points,
            patch: Some(summary),
            generation_tail: generation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpdbscan_core::RpDbscanParams;

    fn stream_1d(points: &[f64]) -> StreamingRpDbscan {
        let mut s = StreamingRpDbscan::new(1, RpDbscanParams::new(1.0, 3)).unwrap();
        s.insert_batch(points).unwrap();
        s
    }

    #[test]
    fn grid_and_generation_mismatches_are_rejected() {
        let s = stream_1d(&[0.0, 0.1, 0.2, 0.3]);
        let base = Arc::new(ServingIndex::from_stream(&s, 2));
        // Same epoch: nothing to patch.
        assert!(matches!(
            ServingIndex::patch_from_stream(&base, &s),
            Err(ServeError::PatchNotNewer { base: 1, epoch: 1 })
        ));
        // Different grid: rejected before any delta accounting.
        let mut other = StreamingRpDbscan::new(1, RpDbscanParams::new(0.5, 3)).unwrap();
        other.insert_batch(&[0.0, 0.1]).unwrap();
        other.insert_batch(&[0.2]).unwrap();
        assert!(matches!(
            ServingIndex::patch_from_stream(&base, &other),
            Err(ServeError::PatchGridMismatch)
        ));
    }

    #[test]
    fn untouched_shards_are_arc_shared_and_rows_stay_stable() {
        // A long 1-D run spreads cells over both shards; a second batch
        // far to the right leaves at least one shard's cells untouched.
        let points: Vec<f64> = (0..40).map(|i| i as f64 * 0.4).collect();
        let mut s = stream_1d(&points);
        let base = Arc::new(ServingIndex::from_stream(&s, 4));
        s.insert_batch(&[100.0, 100.2, 100.4, 100.6]).unwrap();
        let patched = ServingIndex::patch_from_stream(&base, &s).unwrap();
        let summary = patched.patch_summary().expect("patched index");
        assert_eq!(summary.base_generation(), base.generation());
        assert!(
            summary.shared_shards() >= 1,
            "a distant batch must leave some shard untouched: {summary:?}"
        );
        assert_eq!(
            summary.patched_shards() + summary.shared_shards(),
            patched.num_shards()
        );
        // Shared shards are the same allocation, not equal copies.
        let mut shared_ptrs = 0;
        for (a, b) in base.shards.iter().zip(patched.shards.iter()) {
            if Arc::ptr_eq(a, b) {
                shared_ptrs += 1;
                assert!(b.built < patched.generation());
            } else {
                assert_eq!(b.built, patched.generation());
            }
        }
        assert_eq!(shared_ptrs, summary.shared_shards());
        // Rows of surviving cells did not move.
        for (s_idx, shard) in base.shards.iter().enumerate() {
            for (coord, &row) in &shard.cells {
                let patched_shard = &patched.shards[s_idx];
                if let Some(&new_row) = patched_shard.cells.get(coord) {
                    assert_eq!(new_row, row, "row moved for {coord:?}");
                }
            }
        }
        assert_eq!(patched.verify_shards(), Some(s.epoch()));
    }

    #[test]
    fn emptied_cells_leave_tombstones_and_freed_rows_are_reused() {
        let points: Vec<f64> = (0..30).map(|i| i as f64 * 0.4).collect();
        let mut s = stream_1d(&points);
        let ids = s.snapshot().ids.clone();
        let base = Arc::new(ServingIndex::from_stream(&s, 1));
        let cells_before = base.num_cells();
        // Remove the leftmost points: their cells empty out.
        s.remove_batch(&ids[..6]).unwrap();
        let shrunk = Arc::new(ServingIndex::patch_from_stream(&base, &s).unwrap());
        let summary = shrunk.patch_summary().unwrap();
        assert!(summary.removed_cells() >= 1, "{summary:?}");
        assert_eq!(shrunk.num_cells(), cells_before - summary.removed_cells());
        assert!(!shrunk.shards[0].free.is_empty());
        // Rows vector did not shrink: tombstones, not compaction.
        assert_eq!(shrunk.shards[0].records.len(), base.shards[0].records.len());
        // Refill: new cells reuse the freed rows before growing.
        s.insert_batch(&[-0.1, -0.3, -0.5, -0.7]).unwrap();
        let refilled = ServingIndex::patch_from_stream(&shrunk, &s).unwrap();
        assert!(refilled.shards[0].free.len() < shrunk.shards[0].free.len());
        assert_eq!(
            refilled.shards[0].records.len(),
            shrunk.shards[0].records.len()
        );
    }

    #[test]
    fn invalidation_window_is_a_conservative_eps_superset() {
        // Super-cell marking must invalidate every cell within the L∞
        // ε-window of a dirty cell (soundness) while still rejecting
        // cells far outside it (it is a filter, not a no-op).
        let s = stream_1d(&[0.0, 0.1, 0.2]);
        let spec = s.spec().clone();
        let dirty = vec![CellCoord::new([0i64])];
        let summary = PatchSummary {
            base_generation: 0,
            patched_shards: 0,
            shared_shards: 0,
            patched_label_shards: 0,
            shared_label_shards: 0,
            rebuilt_cells: 0,
            removed_cells: 0,
            invalid: invalidated_supers(&spec, &dirty),
        };
        assert!(summary.can_carry(), "small dirty sets must build a window");
        // 1-D: b = 2, so cells −2..=2 are within the ε reach of cell 0
        // and must all be invalidated.
        for x in -2..=2 {
            assert!(
                summary.invalidates(&CellCoord::new([x])),
                "cell {x} is inside the ε window of dirty cell 0"
            );
        }
        // Far cells fall outside every marked super-cell.
        assert!(!summary.invalidates(&CellCoord::new([5i64])));
        assert!(!summary.invalidates(&CellCoord::new([-6i64])));
    }
}
