//! A small LRU of classify cell plans.
//!
//! Classify traffic is typically skewed toward a few hot cells, and a
//! [`CellPlan`](crate::CellPlan) resolves a whole window of shard
//! lookups — worth memoising. The cache is generation-aware: plans
//! embed shard row numbers of one specific index, so the first access
//! after an epoch hot-swap flushes everything. The server pre-populates
//! the cache at publish time ([`ServingIndex::warm_plans`]), so under a
//! warm publish the first query into an occupied cell is already a hit.
//!
//! [`ServingIndex::warm_plans`]: crate::ServingIndex::warm_plans

use crate::index::CellPlan;
use rpdbscan_grid::{CellCoord, FxHashMap};
use std::sync::Arc;

/// A least-recently-used cache of [`CellPlan`]s keyed by grid cell,
/// scoped to one index generation.
#[derive(Debug)]
pub struct PlanLru {
    capacity: usize,
    generation: u64,
    /// Logical clock: bumped on every access, stored per entry; the
    /// entry with the smallest stamp is the eviction victim. Stamps are
    /// unique, so eviction is deterministic.
    stamp: u64,
    map: FxHashMap<CellCoord, (Arc<CellPlan>, u64)>,
    hits: u64,
    misses: u64,
}

impl PlanLru {
    /// An empty cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            generation: 0,
            stamp: 0,
            map: FxHashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Re-scopes the cache to `generation`, flushing every plan if it
    /// differs from the cached generation. Hit/miss counters survive.
    pub fn reset_for_generation(&mut self, generation: u64) {
        if self.generation != generation {
            self.generation = generation;
            self.map.clear();
        }
    }

    /// The generation the cached plans belong to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Re-scopes the cache to `generation` while *keeping* every plan
    /// whose cell `keep` accepts — the delta-publish path, where a patch
    /// proves which cells' plans survived the epoch unchanged. Returns
    /// how many plans were carried. Hit/miss counters survive.
    pub fn carry_forward(&mut self, generation: u64, keep: impl Fn(&CellCoord) -> bool) -> usize {
        self.map.retain(|coord, _| keep(coord));
        self.generation = generation;
        self.map.len()
    }

    /// Looks a plan up, refreshing its recency on hit.
    pub fn get(&mut self, coord: &CellCoord) -> Option<Arc<CellPlan>> {
        self.stamp += 1;
        let stamp = self.stamp;
        match self.map.get_mut(coord) {
            Some((plan, s)) => {
                *s = stamp;
                self.hits += 1;
                Some(Arc::clone(plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a plan, evicting the least recently used entry when full.
    pub fn insert(&mut self, coord: CellCoord, plan: Arc<CellPlan>) {
        if !self.map.contains_key(&coord) && self.map.len() >= self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(c, _)| c.clone());
            if let Some(v) = victim {
                self.map.remove(&v);
            }
        }
        self.stamp += 1;
        self.map.insert(coord, (plan, self.stamp));
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found a live plan.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Arc<CellPlan> {
        // An empty plan is enough to exercise the cache mechanics.
        Arc::new(CellPlan {
            home: None,
            sources: Vec::new(),
            d_lo: Vec::new(),
            d_total: Vec::new(),
            d_always: Vec::new(),
            d_sub_start: vec![0],
            d_centers: Vec::new(),
            d_counts: Vec::new(),
        })
    }

    fn key(x: i64) -> CellCoord {
        CellCoord::new([x, 0])
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = PlanLru::new(2);
        lru.insert(key(1), plan());
        lru.insert(key(2), plan());
        assert!(lru.get(&key(1)).is_some()); // 1 is now fresher than 2
        lru.insert(key(3), plan()); // evicts 2
        assert!(lru.get(&key(1)).is_some());
        assert!(lru.get(&key(2)).is_none());
        assert!(lru.get(&key(3)).is_some());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn generation_change_flushes() {
        let mut lru = PlanLru::new(4);
        lru.reset_for_generation(1);
        lru.insert(key(1), plan());
        assert!(lru.get(&key(1)).is_some());
        lru.reset_for_generation(1); // same generation: keep
        assert!(lru.get(&key(1)).is_some());
        lru.reset_for_generation(2); // hot-swap: flush
        assert!(lru.get(&key(1)).is_none());
        assert_eq!(lru.hits(), 2);
        assert_eq!(lru.misses(), 1);
    }

    #[test]
    fn carry_forward_keeps_only_accepted_cells() {
        let mut lru = PlanLru::new(4);
        lru.reset_for_generation(1);
        lru.insert(key(1), plan());
        lru.insert(key(2), plan());
        lru.insert(key(3), plan());
        let carried = lru.carry_forward(2, |c| c.coords()[0] != 2);
        assert_eq!(carried, 2);
        assert_eq!(lru.generation(), 2);
        assert!(lru.get(&key(1)).is_some());
        assert!(lru.get(&key(2)).is_none());
        assert!(lru.get(&key(3)).is_some());
    }

    #[test]
    fn reinserting_same_key_does_not_evict_others() {
        let mut lru = PlanLru::new(2);
        lru.insert(key(1), plan());
        lru.insert(key(2), plan());
        lru.insert(key(2), plan()); // update in place
        assert!(lru.get(&key(1)).is_some());
        assert!(lru.get(&key(2)).is_some());
    }
}
