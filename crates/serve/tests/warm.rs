//! Warm-at-publish: a fresh generation published through the server
//! pre-populates the generation-scoped plan LRU, so classify traffic
//! into occupied cells never builds a plan cold.

use std::sync::Arc;

use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_serve::{Request, Server, ServerConfig, ServingIndex};

fn built_index(generation: u64) -> (Dataset, Arc<ServingIndex>) {
    let rows: Vec<Vec<f64>> = (0..80)
        .map(|i| vec![(i % 20) as f64 * 0.2, (i / 20) as f64 * 0.2])
        .collect();
    let data = Dataset::from_rows(2, &rows).unwrap();
    let params = RpDbscanParams::new(0.5, 4);
    let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
    let index = Arc::new(ServingIndex::from_batch(&data, &out, &params, 4, generation).unwrap());
    (data, index)
}

/// Classifies every indexed point through the server and returns how
/// many responses came back.
fn classify_all(server: &Server, data: &Dataset) -> usize {
    let mut served = 0;
    for i in 0..data.len() {
        let q = data.point(rpdbscan_geom::PointId(i as u32)).to_vec();
        server.submit(Request::Classify(q)).unwrap();
        if i % 64 == 63 {
            served += server.drain().unwrap().len();
        }
    }
    served + server.drain().unwrap().len()
}

#[test]
fn fresh_generation_publish_builds_no_cold_plans_for_occupied_cells() {
    let (data, index1) = built_index(1);
    let server = Server::new(
        Engine::with_cost_model(2, CostModel::free()),
        Arc::clone(&index1),
        ServerConfig {
            cache_capacity: 4096,
            ..ServerConfig::default()
        },
    );
    let after_construct = server.stats();
    assert!(
        after_construct.plans_warmed as usize >= index1.num_cells(),
        "construction warms every occupied cell ({} warmed, {} cells)",
        after_construct.plans_warmed,
        index1.num_cells()
    );

    // Every indexed point lands in an occupied cell: all plan lookups
    // must be warm hits, zero cold builds.
    assert_eq!(classify_all(&server, &data), data.len());
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 0, "occupied cell built a plan cold");
    assert!(stats.cache_hits >= 1);

    // A query one cell outside the occupied region lands in the warmed
    // unoccupied halo — its window candidate list was precomputed too.
    server.submit(Request::Classify(vec![-0.2, 0.0])).unwrap();
    server.drain().unwrap();
    assert_eq!(
        server.stats().cache_misses,
        0,
        "halo cell plan was not pre-warmed"
    );

    // A *fresh generation* published through the server re-warms the
    // re-scoped cache: classify traffic stays free of cold builds.
    let (_, index2) = built_index(2);
    assert!(server.publish_if_newer(Arc::clone(&index2)));
    assert_eq!(classify_all(&server, &data), data.len());
    let stats = server.stats();
    assert_eq!(
        stats.cache_misses, 0,
        "fresh generation publish left occupied cells cold"
    );
    assert!(
        stats.plans_warmed >= 2 * after_construct.plans_warmed,
        "second publish warmed again"
    );

    // Same-or-older generations do not swap and do not re-warm.
    let warmed_before = server.stats().plans_warmed;
    assert!(!server.publish_if_newer(index2));
    assert_eq!(server.stats().plans_warmed, warmed_before);
}

#[test]
fn cold_publish_builds_on_first_miss() {
    let (data, index) = built_index(1);
    let server = Server::new(
        Engine::with_cost_model(2, CostModel::free()),
        index,
        ServerConfig {
            cache_capacity: 4096,
            warm_on_publish: false,
            ..ServerConfig::default()
        },
    );
    assert_eq!(server.stats().plans_warmed, 0);
    assert_eq!(classify_all(&server, &data), data.len());
    let stats = server.stats();
    assert!(
        stats.cache_misses >= 1,
        "cold publish must build plans on demand"
    );
}
