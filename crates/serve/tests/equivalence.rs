//! Bit-exactness of the serving read path.
//!
//! `classify(coords)` on an indexed point must return exactly the label
//! the Phase III pipeline stored for it — across ρ ∈ {1.0, 0.1},
//! dimensions 1–3, shard counts, and both index sources (batch run and
//! streaming snapshot).

use std::f64::consts::TAU;

use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_geom::{Dataset, PointId};
use rpdbscan_serve::ServingIndex;
use rpdbscan_stream::StreamingRpDbscan;

/// Deterministic golden-angle blob around `center`.
fn blob(dim: usize, center: &[f64], n: usize, spread: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let a = i as f64 * 0.618_033_988_75 * TAU;
            let r = spread * ((i % 10) as f64 / 10.0);
            (0..dim)
                .map(|d| {
                    center[d]
                        + match d {
                            0 => r * a.cos(),
                            1 => r * a.sin(),
                            _ => 0.3 * r * (a * d as f64).sin(),
                        }
                })
                .collect()
        })
        .collect()
}

/// Two blobs, a border point, and two far outliers.
fn test_rows(dim: usize) -> Vec<Vec<f64>> {
    let c1 = vec![0.0; dim];
    let mut c2 = vec![3.0; dim];
    c2[0] = 9.0;
    let mut rows = blob(dim, &c1, 60, 0.4);
    rows.extend(blob(dim, &c2, 60, 0.4));
    let mut border = vec![0.0; dim];
    border[0] = 0.9; // within eps=1.0 of blob 1's rim, too sparse to be core
    rows.push(border);
    rows.push(vec![50.0; dim]);
    rows.push(vec![-40.0; dim]);
    rows
}

#[test]
fn classify_matches_batch_labels_exactly() {
    for dim in 1..=3usize {
        for rho in [1.0, 0.1] {
            let rows = test_rows(dim);
            let data = Dataset::from_rows(dim, &rows).unwrap();
            let params = RpDbscanParams::new(1.0, 5).with_rho(rho);
            let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
            assert!(out.clustering.num_clusters() >= 1, "dim={dim} rho={rho}");
            for shards in [1usize, 4] {
                let index = ServingIndex::from_batch(&data, &out, &params, shards, 7).unwrap();
                assert_eq!(index.num_shards(), shards);
                assert_eq!(index.num_points(), data.len());
                for i in 0..data.len() {
                    let stored = out.clustering.labels()[i];
                    let q = data.point(PointId(i as u32));
                    let c = index.classify(q).unwrap();
                    assert_eq!(
                        c.label, stored,
                        "dim={dim} rho={rho} shards={shards} point={i}"
                    );
                    assert!(c.density >= 1, "an indexed point sees itself");
                    assert_eq!(index.label_of(i as u32), Some(stored));
                }
                // Unknown ids are distinguishable from noise labels.
                assert_eq!(index.label_of(data.len() as u32 + 10), None);
            }
        }
    }
}

#[test]
fn classify_matches_streaming_snapshot_exactly() {
    for dim in [2usize, 3] {
        for rho in [1.0, 0.1] {
            let rows = test_rows(dim);
            let params = RpDbscanParams::new(1.0, 5).with_rho(rho);
            let mut s = StreamingRpDbscan::new(dim, params).unwrap();
            // Three micro-batches, so the index reflects epoch 3.
            for chunk in rows.chunks(rows.len().div_ceil(3)) {
                s.insert_rows(chunk).unwrap();
            }
            let snap = s.snapshot();
            let data = s.dataset();
            let index = ServingIndex::from_stream(&s, 4);
            assert_eq!(index.generation(), snap.epoch());
            assert_eq!(index.num_points(), snap.ids.len());
            for (row, (id, &stored)) in snap.ids.iter().zip(snap.labels.labels().iter()).enumerate()
            {
                let q = data.point(PointId(row as u32));
                let c = index.classify(q).unwrap();
                assert_eq!(c.label, stored, "dim={dim} rho={rho} id={}", id.0);
                assert_eq!(index.label_of(id.0), Some(stored));
            }
        }
    }
}

#[test]
fn planned_classify_matches_scalar_oracle_bit_for_bit() {
    // The planned path (plan-time never/always resolution + chunked
    // kernel) must reproduce the scalar reference *exactly* — label and
    // density — on indexed points, perturbed probes, and probes into
    // unoccupied space.
    for dim in 1..=3usize {
        for rho in [1.0, 0.1] {
            let rows = test_rows(dim);
            let data = Dataset::from_rows(dim, &rows).unwrap();
            let params = RpDbscanParams::new(1.0, 5).with_rho(rho);
            let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
            let index = ServingIndex::from_batch(&data, &out, &params, 4, 1).unwrap();
            let mut probes: Vec<Vec<f64>> = rows.clone();
            probes.extend(rows.iter().map(|r| {
                let mut p = r.clone();
                p[0] += 0.37; // off-lattice: exercises partial containment
                p
            }));
            probes.push(vec![1.3; dim]); // unoccupied cell near blob 1
            probes.push(vec![123.4; dim]); // far empty space
            for q in &probes {
                let planned = index.classify(q).unwrap();
                let oracle = index.classify_oracle(q).unwrap();
                assert_eq!(planned, oracle, "dim={dim} rho={rho} q={q:?}");
            }
        }
    }
}

#[test]
fn unoccupied_cells_resolve_against_nearby_core_cells() {
    // dim 1: cell side = eps, so x=1.3 sits in an unoccupied cell while
    // still within eps of blob 1's rim (the dense rim point at x=0.9).
    let rows = test_rows(1);
    let data = Dataset::from_rows(1, &rows).unwrap();
    let params = RpDbscanParams::new(1.0, 5);
    let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
    let index = ServingIndex::from_batch(&data, &out, &params, 4, 1).unwrap();
    let near = index.classify(&[1.3]).unwrap();
    assert_eq!(near.label, out.clustering.labels()[0], "joins blob 1");
    // Far away: no label, zero density.
    let far = index.classify(&[1234.5]).unwrap();
    assert_eq!(far.label, None);
    assert_eq!(far.density, 0);
}

#[test]
fn query_validation_rejects_bad_coordinates() {
    let rows = test_rows(2);
    let data = Dataset::from_rows(2, &rows).unwrap();
    let params = RpDbscanParams::new(1.0, 5);
    let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
    let index = ServingIndex::from_batch(&data, &out, &params, 2, 1).unwrap();
    assert!(matches!(
        index.classify(&[1.0]),
        Err(rpdbscan_serve::ServeError::DimensionMismatch {
            expected: 2,
            got: 1
        })
    ));
    assert!(matches!(
        index.classify(&[f64::NAN, 0.0]),
        Err(rpdbscan_serve::ServeError::NonFinite)
    ));
}

#[test]
fn cluster_stats_are_consistent_with_labels() {
    let rows = test_rows(2);
    let data = Dataset::from_rows(2, &rows).unwrap();
    let params = RpDbscanParams::new(1.0, 5);
    let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
    let index = ServingIndex::from_batch(&data, &out, &params, 4, 1).unwrap();
    assert_eq!(index.num_clusters(), out.clustering.num_clusters());
    let mut labeled = 0usize;
    for c in 0..index.num_clusters() as u32 {
        let cs = index.cluster_stats(c).expect("dense cluster ids");
        assert_eq!(cs.cluster, c);
        assert!(cs.points >= 1);
        assert!(cs.core_cells >= 1);
        assert!(cs.core_points >= 1);
        assert!(
            cs.core_points <= cs.points,
            "core points are labeled points"
        );
        let by_count = out
            .clustering
            .labels()
            .iter()
            .filter(|&&l| l == Some(c))
            .count();
        assert_eq!(cs.points, by_count);
        labeled += cs.points;
    }
    assert_eq!(labeled + out.clustering.noise_count(), data.len());
    assert!(index.cluster_stats(index.num_clusters() as u32).is_none());
}

/// Every read a patched generation can answer must be bit-identical to
/// a fresh `from_stream` build of the same epoch: labels, classify
/// results, stats, and the shard-generation invariant — across dims,
/// shard counts, and a churn mix of inserts and removes (so the
/// incremental label path sees removals, border moves, and slot reuse).
#[test]
fn patched_generations_read_bit_identical_to_fresh_builds() {
    for dim in [1usize, 3] {
        for shards in [1usize, 4] {
            let params = RpDbscanParams::new(1.0, 4);
            let mut s = StreamingRpDbscan::new(dim, params).unwrap();
            let rows = test_rows(dim);
            let third = rows.len().div_ceil(3);
            let first = s.insert_rows(&rows[..third]).unwrap();
            let mut prev = std::sync::Arc::new(ServingIndex::from_stream(&s, shards));

            // Epoch chain: grow, churn (remove every third survivor of
            // the first batch — enough to empty cells and move borders),
            // grow again, then shrink hard.
            let removals: Vec<_> = first.iter().step_by(3).copied().collect();
            s.insert_rows(&rows[third..2 * third]).unwrap();
            s.remove_batch(&removals).unwrap();
            s.insert_rows(&rows[2 * third..]).unwrap();
            let late = s.insert_rows(&rows[..third]).unwrap();
            for step in [1usize, 2] {
                // Two patch steps per case: the second spans the epochs
                // the first already consumed.
                if step == 2 {
                    s.remove_batch(&late).unwrap();
                }
                let patched = ServingIndex::patch_from_stream(&prev, &s).unwrap();
                let fresh = ServingIndex::from_stream(&s, shards);
                let ctx = format!("dim={dim} shards={shards} step={step}");
                assert!(patched.patch_summary().is_some(), "{ctx}");
                assert_eq!(patched.generation(), fresh.generation(), "{ctx}");
                assert_eq!(patched.verify_shards(), Some(patched.generation()), "{ctx}");
                assert_eq!(patched.num_points(), fresh.num_points(), "{ctx}");
                assert_eq!(patched.num_cells(), fresh.num_cells(), "{ctx}");
                assert_eq!(patched.num_clusters(), fresh.num_clusters(), "{ctx}");
                for c in 0..fresh.num_clusters() as u32 {
                    assert_eq!(
                        patched.cluster_stats(c),
                        fresh.cluster_stats(c),
                        "{ctx} c={c}"
                    );
                }
                let snap = s.snapshot();
                for id in &snap.ids {
                    assert_eq!(
                        patched.label_of(id.0),
                        fresh.label_of(id.0),
                        "{ctx} id={}",
                        id.0
                    );
                }
                // Dead slots answer None on both sides.
                for id in &removals {
                    assert_eq!(
                        patched.label_of(id.0),
                        fresh.label_of(id.0),
                        "{ctx} dead {}",
                        id.0
                    );
                }
                let data = s.dataset();
                for row in 0..data.len() {
                    let q = data.point(PointId(row as u32));
                    assert_eq!(
                        patched.classify(q).unwrap(),
                        fresh.classify(q).unwrap(),
                        "{ctx} row={row}"
                    );
                }
                let probe = vec![1.3; dim];
                assert_eq!(
                    patched.classify(&probe).unwrap(),
                    fresh.classify(&probe).unwrap(),
                    "{ctx} unoccupied probe"
                );
                prev = std::sync::Arc::new(patched);
            }
        }
    }
}

/// Concurrent readers across a chain of delta publishes must never see
/// a torn generation — even though every patched generation `Arc`-shares
/// untouched shards with its base, so an (incorrect) in-place shard
/// mutation would be visible through a reader's pinned `Arc`.
#[test]
fn delta_publishes_never_tear_with_arc_shared_shards() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let params = RpDbscanParams::new(1.0, 4);
    let mut s = StreamingRpDbscan::new(2, params).unwrap();
    let rows = test_rows(2);
    s.insert_rows(&rows[..rows.len() / 2]).unwrap();
    let slot = Arc::new(rpdbscan_serve::IndexSlot::new(Arc::new(
        ServingIndex::from_stream(&s, 4),
    )));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let slot = Arc::clone(&slot);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut loads = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let index = slot.load();
                    // The pinned Arc must stay internally consistent no
                    // matter how many generations publish after it.
                    assert_eq!(index.verify_shards(), Some(index.generation()));
                    assert!(index.num_points() > 0);
                    loads += 1;
                }
                loads
            })
        })
        .collect();
    let mut inserted = s.insert_rows(&rows[rows.len() / 2..]).unwrap();
    for epoch in 0..6 {
        // Churn: drop a slice of the latest arrivals, add a fresh blob.
        let cut = inserted.len() / 3;
        s.remove_batch(&inserted[..cut]).unwrap();
        inserted = s
            .insert_rows(&blob(2, &[epoch as f64, -3.0], 30, 0.4))
            .unwrap();
        let prev = slot.load();
        let patched = ServingIndex::patch_from_stream(&prev, &s).unwrap();
        assert!(patched.patch_summary().is_some());
        slot.publish(Arc::new(patched));
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        let loads = r.join().expect("reader saw a torn generation");
        assert!(loads > 0, "reader never observed a published index");
    }
}

#[test]
fn torn_generation_detector_holds_on_any_built_index() {
    let rows = test_rows(2);
    let data = Dataset::from_rows(2, &rows).unwrap();
    let params = RpDbscanParams::new(1.0, 5);
    let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
    for g in [0u64, 1, 42, u64::MAX] {
        let index = ServingIndex::from_batch(&data, &out, &params, 3, g).unwrap();
        assert_eq!(index.verify_generation(), Some(g));
        assert_eq!(index.generation(), g);
    }
}

#[test]
fn index_records_its_backend_and_rejects_approximate_ones() {
    use rpdbscan_core::DensityBackendKind;
    let data = Dataset::from_rows(2, &test_rows(2)).unwrap();
    let params = RpDbscanParams::new(1.0, 5);
    let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
    let index = ServingIndex::from_batch(&data, &out, &params, 4, 1).unwrap();
    assert_eq!(index.backend(), "exact");

    // A streaming-built index is exact by construction.
    let stream = StreamingRpDbscan::new(2, params).unwrap();
    assert_eq!(ServingIndex::from_stream(&stream, 2).backend(), "exact");

    // Approximate-backend parameters cannot build a serving index: the
    // classify path replays the exact cell graph.
    for kind in [
        DensityBackendKind::MutualKnn { k: 10 },
        DensityBackendKind::SampledCore { sample_frac: 0.3 },
    ] {
        let p = params.with_density_backend(kind);
        let err = ServingIndex::from_batch(&data, &out, &p, 4, 1).unwrap_err();
        assert!(
            matches!(err, rpdbscan_serve::ServeError::UnsupportedBackend(b) if b == kind.name()),
            "{err}"
        );
    }
}
