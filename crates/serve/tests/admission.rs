//! Admission control and micro-batch execution, across schedulers.
//!
//! A full queue must reject with `Overloaded` — never block or deadlock
//! — and a drain must answer everything admitted, in ticket order, under
//! every scheduler the engine offers.

use std::sync::Arc;

use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_engine::{ChunkedSteal, CostModel, Engine, Fifo, Lpt};
use rpdbscan_geom::Dataset;
use rpdbscan_serve::{Request, Response, ServeError, Server, ServerConfig, ServingIndex};

fn built_index() -> (Dataset, Arc<ServingIndex>, RpDbscanParams) {
    let rows: Vec<Vec<f64>> = (0..80)
        .map(|i| vec![(i % 20) as f64 * 0.2, (i / 20) as f64 * 0.2])
        .collect();
    let data = Dataset::from_rows(2, &rows).unwrap();
    let params = RpDbscanParams::new(0.5, 4);
    let out = RpDbscan::new(params).unwrap().run_local(&data).unwrap();
    let index = Arc::new(ServingIndex::from_batch(&data, &out, &params, 4, 1).unwrap());
    (data, index, params)
}

fn engines() -> Vec<Engine> {
    vec![
        Engine::with_cost_model(4, CostModel::free()).with_scheduler(Fifo),
        Engine::with_cost_model(4, CostModel::free()).with_scheduler(Lpt),
        Engine::with_cost_model(4, CostModel::free()).with_scheduler(ChunkedSteal::new(2)),
    ]
}

#[test]
fn full_queue_rejects_then_recovers() {
    let (data, index, _) = built_index();
    for engine in engines() {
        let name = engine.scheduler_name();
        let server = Server::new(
            engine,
            Arc::clone(&index),
            ServerConfig {
                queue_capacity: 4,
                cache_capacity: 8,
                ..ServerConfig::default()
            },
        );
        // Fill the queue with a mix of request kinds.
        let tickets: Vec<u64> = vec![
            Request::LabelOf(0),
            Request::Classify(data.point(rpdbscan_geom::PointId(1)).to_vec()),
            Request::ClusterStats(0),
            Request::LabelOf(9999),
        ]
        .into_iter()
        .map(|r| server.submit(r).unwrap())
        .collect();
        assert_eq!(tickets, vec![0, 1, 2, 3], "scheduler {name}");
        assert_eq!(server.queue_len(), 4);

        // Admission control: the fifth request bounces immediately.
        let err = server.submit(Request::LabelOf(5)).unwrap_err();
        assert!(
            matches!(err, ServeError::Overloaded { capacity: 4 }),
            "scheduler {name}: {err}"
        );
        assert_eq!(server.queue_len(), 4, "rejection leaves the queue intact");

        // Drain answers everything admitted, in ticket order.
        let responses = server.drain().unwrap();
        assert_eq!(responses.len(), 4, "scheduler {name}");
        for (i, (t, _)) in responses.iter().enumerate() {
            assert_eq!(*t, i as u64);
        }
        match &responses[0].1 {
            Response::Label(Some(_)) => {}
            other => panic!("scheduler {name}: expected stored label, got {other:?}"),
        }
        match &responses[3].1 {
            Response::Label(None) => {}
            other => panic!("scheduler {name}: unknown id must be None, got {other:?}"),
        }

        // The queue is free again; tickets keep ascending past the
        // rejected request (which consumed none).
        assert_eq!(server.queue_len(), 0);
        assert_eq!(server.submit(Request::LabelOf(1)).unwrap(), 4);
        let again = server.drain().unwrap();
        assert_eq!(again.len(), 1);

        let stats = server.stats();
        assert_eq!(stats.submitted, 5, "scheduler {name}");
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.served, 5);
        assert_eq!(stats.batches, 2);
    }
}

#[test]
fn drain_on_empty_queue_is_a_noop() {
    let (_, index, _) = built_index();
    let engine = Engine::with_cost_model(2, CostModel::free());
    let server = Server::new(engine, index, ServerConfig::default());
    assert!(server.drain().unwrap().is_empty());
    let stats = server.stats();
    assert_eq!(stats.batches, 0, "empty drains run no stage");
}

#[test]
fn execute_returns_responses_in_request_order() {
    let (data, index, _) = built_index();
    let engine = Engine::with_cost_model(4, CostModel::free());
    let server = Server::new(engine, Arc::clone(&index), ServerConfig::default());
    let reqs: Vec<Request> = (0..20)
        .map(|i| match i % 3 {
            0 => Request::LabelOf(i as u32),
            1 => Request::Classify(data.point(rpdbscan_geom::PointId(i as u32)).to_vec()),
            _ => Request::ClusterStats(0),
        })
        .collect();
    let responses = server.execute(reqs).unwrap();
    assert_eq!(responses.len(), 20);
    for (i, resp) in responses.iter().enumerate() {
        match (i % 3, resp) {
            (0, Response::Label(Some(l))) => {
                assert_eq!(*l, index.label_of(i as u32).unwrap());
            }
            (1, Response::Classified(c)) => {
                assert_eq!(c.label, index.label_of(i as u32).unwrap());
            }
            (2, Response::Stats(Some(_))) => {}
            other => panic!("request {i}: unexpected response {other:?}"),
        }
    }
}

#[test]
fn classify_plans_hit_the_cache_on_repeat_traffic() {
    let (data, index, _) = built_index();
    let q = data.point(rpdbscan_geom::PointId(0)).to_vec();

    // Default (warm publish): construction pre-builds every occupied
    // cell's plan, so even the first lookup is a hit.
    let engine = Engine::with_cost_model(2, CostModel::free());
    let server = Server::new(engine, Arc::clone(&index), ServerConfig::default());
    for _ in 0..3 {
        server.submit(Request::Classify(q.clone())).unwrap();
        server.drain().unwrap();
    }
    let stats = server.stats();
    assert!(stats.plans_warmed >= 1, "warm publish built plans");
    assert_eq!(stats.cache_misses, 0, "warmed plan is never built cold");
    assert_eq!(stats.cache_hits, 3, "every batch reuses the warm plan");
    assert!(stats.classify.count() >= 1, "classify latencies recorded");

    // Cold publish: the historical build-on-first-miss behaviour.
    let engine = Engine::with_cost_model(2, CostModel::free());
    let server = Server::new(
        engine,
        index,
        ServerConfig {
            warm_on_publish: false,
            ..ServerConfig::default()
        },
    );
    for _ in 0..3 {
        server.submit(Request::Classify(q.clone())).unwrap();
        server.drain().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.plans_warmed, 0);
    assert_eq!(stats.cache_misses, 1, "first lookup builds the plan");
    assert_eq!(stats.cache_hits, 2, "repeats reuse it");
}

#[test]
fn malformed_classify_fails_at_admission() {
    let (_, index, _) = built_index();
    let engine = Engine::with_cost_model(2, CostModel::free());
    let server = Server::new(engine, index, ServerConfig::default());
    assert!(matches!(
        server.submit(Request::Classify(vec![1.0])),
        Err(ServeError::DimensionMismatch {
            expected: 2,
            got: 1
        })
    ));
    assert!(matches!(
        server.submit(Request::Classify(vec![f64::NAN, 0.0])),
        Err(ServeError::NonFinite)
    ));
    assert_eq!(server.queue_len(), 0);
    let stats = server.stats();
    assert_eq!(stats.submitted, 0);
}
