//! Clustering representations and quality metrics.
//!
//! The paper measures clustering accuracy with the Rand index (§7.1.5,
//! [Rand 1971]) between RP-DBSCAN's output and exact DBSCAN's. This crate
//! provides the shared [`Clustering`] label vector plus pair-counting
//! metrics (Rand index, adjusted Rand index) and normalized mutual
//! information, all computed from a contingency table in time linear in
//! the number of points — the naive O(n²) pair enumeration would be
//! hopeless at the 100k-point accuracy data sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clustering;
pub mod latency;
pub mod pair_counting;

pub use clustering::Clustering;
pub use latency::LatencyHistogram;
pub use pair_counting::{adjusted_rand_index, normalized_mutual_info, rand_index, NoisePolicy};
