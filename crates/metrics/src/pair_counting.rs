//! Pair-counting clustering agreement: Rand index, adjusted Rand index,
//! and normalized mutual information, via a sparse contingency table.

use crate::clustering::Clustering;
use std::collections::HashMap;

/// How noise points enter a pairwise comparison.
///
/// DBSCAN outputs three categories; the Rand index is defined over hard
/// partitions, so noise must be mapped to clusters somehow. The paper does
/// not spell its convention out; both common choices are provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoisePolicy {
    /// All noise points of one clustering form one extra cluster.
    /// This punishes disagreement about *which* points are noise while not
    /// splitting hairs among noise points themselves.
    SingleCluster,
    /// Every noise point is its own singleton cluster — the strictest
    /// interpretation; two clusterings only agree on a noise point when
    /// both isolate it.
    Singletons,
}

fn n_choose_2(n: u64) -> u128 {
    (n as u128) * (n as u128).saturating_sub(1) / 2
}

/// Densifies labels under a noise policy. Noise labels are mapped to ids
/// above the real clusters.
fn resolve(c: &Clustering, policy: NoisePolicy) -> Vec<u32> {
    let mut map: HashMap<u32, u32> = HashMap::new();
    let mut next = 0u32;
    let mut out = Vec::with_capacity(c.len());
    // Reserve a stream of fresh ids for noise after the pass when needed.
    let mut noise_marker: Option<u32> = None;
    let mut fresh = u32::MAX;
    for l in c.labels() {
        match l {
            Some(id) => {
                let e = map.entry(*id).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                });
                out.push(*e);
            }
            None => match policy {
                NoisePolicy::SingleCluster => {
                    let m = *noise_marker.get_or_insert(u32::MAX);
                    out.push(m);
                }
                NoisePolicy::Singletons => {
                    out.push(fresh);
                    fresh -= 1;
                }
            },
        }
    }
    out
}

/// Sparse joint counts keyed by a pair of labels.
type JointCounts = HashMap<(u32, u32), u64>;
/// Per-label marginal counts.
type MarginalCounts = HashMap<u32, u64>;

/// Builds the sparse contingency table between two label vectors.
fn contingency(a: &[u32], b: &[u32]) -> (JointCounts, MarginalCounts, MarginalCounts) {
    let mut joint: HashMap<(u32, u32), u64> = HashMap::new();
    let mut ma: HashMap<u32, u64> = HashMap::new();
    let mut mb: HashMap<u32, u64> = HashMap::new();
    for (&x, &y) in a.iter().zip(b) {
        *joint.entry((x, y)).or_insert(0) += 1;
        *ma.entry(x).or_insert(0) += 1;
        *mb.entry(y).or_insert(0) += 1;
    }
    (joint, ma, mb)
}

/// The Rand index between two clusterings of the same points (§7.1.5):
/// the fraction of point pairs on which the clusterings agree, in `[0,1]`.
///
/// # Panics
///
/// Panics if the clusterings have different lengths.
pub fn rand_index(a: &Clustering, b: &Clustering, policy: NoisePolicy) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let la = resolve(a, policy);
    let lb = resolve(b, policy);
    let (joint, ma, mb) = contingency(&la, &lb);
    let tp: u128 = joint.values().map(|&v| n_choose_2(v)).sum();
    let pa: u128 = ma.values().map(|&v| n_choose_2(v)).sum();
    let pb: u128 = mb.values().map(|&v| n_choose_2(v)).sum();
    let total = n_choose_2(n);
    // agreements = pairs together in both + pairs apart in both
    //            = total + 2·TP − (TP+FP) − (TP+FN)
    let agreements = total + 2 * tp - pa - pb;
    agreements as f64 / total as f64
}

/// The adjusted Rand index (chance-corrected; 1 = identical, ~0 = random).
pub fn adjusted_rand_index(a: &Clustering, b: &Clustering, policy: NoisePolicy) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let la = resolve(a, policy);
    let lb = resolve(b, policy);
    let (joint, ma, mb) = contingency(&la, &lb);
    let tp: f64 = joint.values().map(|&v| n_choose_2(v) as f64).sum();
    let pa: f64 = ma.values().map(|&v| n_choose_2(v) as f64).sum();
    let pb: f64 = mb.values().map(|&v| n_choose_2(v) as f64).sum();
    let total = n_choose_2(n) as f64;
    let expected = pa * pb / total;
    let max = 0.5 * (pa + pb);
    if (max - expected).abs() < f64::EPSILON {
        return 1.0; // both trivial partitions
    }
    (tp - expected) / (max - expected)
}

/// Normalized mutual information (arithmetic normalization), in `[0,1]`.
pub fn normalized_mutual_info(a: &Clustering, b: &Clustering, policy: NoisePolicy) -> f64 {
    assert_eq!(a.len(), b.len(), "clusterings must cover the same points");
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let la = resolve(a, policy);
    let lb = resolve(b, policy);
    let (joint, ma, mb) = contingency(&la, &lb);
    let entropy = |m: &HashMap<u32, u64>| -> f64 {
        m.values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = entropy(&ma);
    let hb = entropy(&mb);
    let mut mi = 0.0;
    for (&(x, y), &c) in &joint {
        let pxy = c as f64 / n;
        let px = ma[&x] as f64 / n;
        let py = mb[&y] as f64 / n;
        mi += pxy * (pxy / (px * py)).ln();
    }
    // lint:allow(float-eq): entropy of a single-cluster partition is exactly 0.0; this is the intentional exact case
    if ha + hb == 0.0 {
        return 1.0; // both single-cluster partitions: identical
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(labels: &[i64]) -> Clustering {
        Clustering::new(
            labels
                .iter()
                .map(|&l| if l < 0 { None } else { Some(l as u32) })
                .collect(),
        )
    }

    #[test]
    fn identical_clusterings_score_one() {
        let a = c(&[0, 0, 1, 1, 2, -1]);
        for policy in [NoisePolicy::SingleCluster, NoisePolicy::Singletons] {
            assert_eq!(rand_index(&a, &a, policy), 1.0);
            assert_eq!(adjusted_rand_index(&a, &a, policy), 1.0);
            assert!((normalized_mutual_info(&a, &a, policy) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn label_permutation_is_irrelevant() {
        let a = c(&[0, 0, 1, 1]);
        let b = c(&[5, 5, 9, 9]);
        assert_eq!(rand_index(&a, &b, NoisePolicy::SingleCluster), 1.0);
        assert_eq!(adjusted_rand_index(&a, &b, NoisePolicy::SingleCluster), 1.0);
    }

    #[test]
    fn known_rand_index_value() {
        // Classic example: a = {1,1,2,2,3,3}, b = {1,1,1,2,2,2}
        // n = 6, pairs = 15.
        let a = c(&[1, 1, 2, 2, 3, 3]);
        let b = c(&[1, 1, 1, 2, 2, 2]);
        // TP: joint cells (1,1):2, (2,1):1, (2,2):1, (3,2):2 -> C(2,2)*2 = 2
        // pa = 3*C(2,2) = 3 ; pb = 2*C(3,2) = 6
        // agreements = 15 + 4 - 3 - 6 = 10 -> RI = 10/15
        let ri = rand_index(&a, &b, NoisePolicy::SingleCluster);
        assert!((ri - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_split_scores_below_one() {
        let a = c(&[0, 0, 0, 0]);
        let b = c(&[0, 0, 1, 1]);
        let ri = rand_index(&a, &b, NoisePolicy::SingleCluster);
        assert!(ri < 1.0);
        // agreements: pairs together in both = C(2,2)*2 = 2; apart in both = 0
        // total = 6 -> RI = (6 + 4 - 6 - 2)/6 = 2/6
        assert!((ri - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn noise_policies_differ() {
        // Both all-noise: SingleCluster sees two identical one-cluster
        // partitions (RI 1); Singletons also agrees (all pairs apart).
        let a = c(&[-1, -1, -1]);
        let b = c(&[-1, -1, -1]);
        assert_eq!(rand_index(&a, &b, NoisePolicy::SingleCluster), 1.0);
        assert_eq!(rand_index(&a, &b, NoisePolicy::Singletons), 1.0);
        // One clustering groups noise points that the other labels noise:
        let x = c(&[0, 0, 5]);
        let y = c(&[-1, -1, 5]);
        let single = rand_index(&x, &y, NoisePolicy::SingleCluster);
        let singles = rand_index(&x, &y, NoisePolicy::Singletons);
        // Under SingleCluster, y's two noise points stay together, agreeing
        // with x on that pair; under Singletons they are split apart.
        assert!(single > singles);
    }

    #[test]
    fn ari_random_labels_near_zero() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let a = Clustering::new((0..5000).map(|_| Some(rng.gen_range(0..5u32))).collect());
        let b = Clustering::new((0..5000).map(|_| Some(rng.gen_range(0..5u32))).collect());
        let ari = adjusted_rand_index(&a, &b, NoisePolicy::SingleCluster);
        assert!(ari.abs() < 0.02, "ari = {ari}");
        // unadjusted RI of random 5-cluster labels is near 1 - 2/5 + 2/25
        let ri = rand_index(&a, &b, NoisePolicy::SingleCluster);
        assert!(ri > 0.6);
    }

    #[test]
    fn nmi_independent_labels_near_zero() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let a = Clustering::new((0..5000).map(|_| Some(rng.gen_range(0..4u32))).collect());
        let b = Clustering::new((0..5000).map(|_| Some(rng.gen_range(0..4u32))).collect());
        let nmi = normalized_mutual_info(&a, &b, NoisePolicy::SingleCluster);
        assert!(nmi < 0.01, "nmi = {nmi}");
    }

    #[test]
    fn tiny_inputs() {
        let a = c(&[0]);
        let b = c(&[1]);
        assert_eq!(rand_index(&a, &b, NoisePolicy::SingleCluster), 1.0);
        let e = Clustering::new(vec![]);
        assert_eq!(rand_index(&e, &e, NoisePolicy::SingleCluster), 1.0);
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let a = c(&[0, 1]);
        let b = c(&[0]);
        let _ = rand_index(&a, &b, NoisePolicy::SingleCluster);
    }

    #[test]
    fn ri_symmetry() {
        let a = c(&[0, 0, 1, 2, 2, -1, 1]);
        let b = c(&[1, 1, 1, 0, -1, -1, 2]);
        for policy in [NoisePolicy::SingleCluster, NoisePolicy::Singletons] {
            assert_eq!(rand_index(&a, &b, policy), rand_index(&b, &a, policy));
            assert!(
                (adjusted_rand_index(&a, &b, policy) - adjusted_rand_index(&b, &a, policy)).abs()
                    < 1e-12
            );
        }
    }
}
