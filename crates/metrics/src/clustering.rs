//! The shared clustering result type.

/// A clustering of `n` points: `labels[i]` is the cluster of point `i`,
/// or `None` for noise/outliers (DBSCAN's third category).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    labels: Vec<Option<u32>>,
}

impl Clustering {
    /// Wraps a label vector.
    pub fn new(labels: Vec<Option<u32>>) -> Self {
        Self { labels }
    }

    /// An all-noise clustering of `n` points.
    pub fn all_noise(n: usize) -> Self {
        Self {
            labels: vec![None; n],
        }
    }

    /// The label vector.
    #[inline]
    pub fn labels(&self) -> &[Option<u32>] {
        &self.labels
    }

    /// Mutable access for assembly by clustering algorithms.
    #[inline]
    pub fn labels_mut(&mut self) -> &mut [Option<u32>] {
        &mut self.labels
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the clustering covers no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct clusters (noise not counted).
    pub fn num_clusters(&self) -> usize {
        let mut ids: Vec<u32> = self.labels.iter().flatten().copied().collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Number of noise points.
    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_none()).count()
    }

    /// Sizes of each cluster, indexed by a dense re-numbering in order of
    /// first appearance. Returns `(sizes, renumbered_labels)`.
    pub fn dense_sizes(&self) -> (Vec<usize>, Vec<Option<u32>>) {
        let mut map = std::collections::HashMap::new();
        let mut sizes = Vec::new();
        let dense: Vec<Option<u32>> = self
            .labels
            .iter()
            .map(|l| {
                l.map(|id| {
                    let next = map.len() as u32;
                    let d = *map.entry(id).or_insert(next);
                    if d as usize == sizes.len() {
                        sizes.push(0);
                    }
                    sizes[d as usize] += 1;
                    d
                })
            })
            .collect();
        (sizes, dense)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let c = Clustering::new(vec![Some(3), Some(3), None, Some(7), None]);
        assert_eq!(c.len(), 5);
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.noise_count(), 2);
    }

    #[test]
    fn all_noise() {
        let c = Clustering::all_noise(4);
        assert_eq!(c.num_clusters(), 0);
        assert_eq!(c.noise_count(), 4);
    }

    #[test]
    fn dense_sizes_renumbers_in_order() {
        let c = Clustering::new(vec![Some(9), Some(2), Some(9), None]);
        let (sizes, dense) = c.dense_sizes();
        assert_eq!(sizes, vec![2, 1]);
        assert_eq!(dense, vec![Some(0), Some(1), Some(0), None]);
    }

    #[test]
    fn empty_clustering() {
        let c = Clustering::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.num_clusters(), 0);
    }
}
