//! Fixed-bucket latency histograms for the serving layer.
//!
//! The serving benches report p50/p95/p99 request latencies. A histogram
//! with logarithmically spaced fixed buckets keeps recording O(1),
//! merging trivial, and memory constant regardless of request count —
//! the same trade HdrHistogram makes, reduced to what the benches need.
//!
//! The histogram never reads a clock: callers feed it durations they
//! already hold (the engine's per-task measurements, a bench's own
//! timers), so the determinism-time rule — no wall-clock reads inside
//! clustering paths — is preserved by construction.

/// Smallest representable latency, seconds (1 µs). Everything below
/// lands in bucket 0.
const MIN_LATENCY: f64 = 1e-6;
/// Buckets per factor of 10 — resolution is ~12% per bucket.
const BUCKETS_PER_DECADE: usize = 20;
/// Decades covered: 1 µs .. 1000 s.
const DECADES: usize = 9;
/// Total bucket count (one extra catch-all at the top).
const NUM_BUCKETS: usize = BUCKETS_PER_DECADE * DECADES + 1;

/// A fixed-bucket histogram of latencies in seconds, with percentile
/// readout.
///
/// ```
/// use rpdbscan_metrics::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=100u32 {
///     h.record(i as f64 * 1e-3); // 1ms..100ms
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(50.0).unwrap();
/// assert!(p50 > 0.040 && p50 < 0.065, "{p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a latency: log-spaced above [`MIN_LATENCY`], clamped
/// to the catch-all ends.
fn bucket_of(seconds: f64) -> usize {
    if seconds <= MIN_LATENCY || seconds.is_nan() {
        // NaN and negatives land in bucket 0 too.
        return 0;
    }
    let pos = (seconds / MIN_LATENCY).log10() * BUCKETS_PER_DECADE as f64;
    (pos.ceil() as usize).min(NUM_BUCKETS - 1)
}

/// Upper bound of a bucket, seconds.
fn bucket_upper(i: usize) -> f64 {
    MIN_LATENCY * 10f64.powf(i as f64 / BUCKETS_PER_DECADE as f64)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records one latency in seconds. Non-finite or negative values
    /// count into the lowest bucket rather than being dropped, so
    /// `count()` always equals the number of `record` calls.
    pub fn record(&mut self, seconds: f64) {
        self.buckets[bucket_of(seconds)] += 1;
        self.count += 1;
        if seconds.is_finite() && seconds > 0.0 {
            self.sum += seconds;
            if seconds > self.max {
                self.max = seconds;
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded latencies, seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean latency, seconds (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Largest recorded latency, seconds.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The latency at percentile `p` (0..=100): the upper bound of the
    /// bucket holding the `ceil(p% · count)`-th sample. `None` when the
    /// histogram is empty. Resolution is one bucket (~12%).
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i + 1 == NUM_BUCKETS {
                    // The catch-all bucket has no meaningful upper bound;
                    // the recorded max is the honest answer there.
                    return Some(self.max.max(MIN_LATENCY));
                }
                // Clamp to the true max so the headline numbers never
                // exceed an observed latency.
                return Some(bucket_upper(i).min(self.max.max(MIN_LATENCY)));
            }
        }
        Some(self.max)
    }

    /// Median latency, seconds.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 95th-percentile latency, seconds.
    pub fn p95(&self) -> Option<f64> {
        self.percentile(95.0)
    }

    /// 99th-percentile latency, seconds.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = LatencyHistogram::new();
        h.record(0.005);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!((v - 0.005).abs() / 0.005 < 0.15, "p{p}: {v}");
        }
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_data() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u32 {
            h.record(i as f64 * 1e-4); // 0.1ms .. 100ms
        }
        let p50 = h.p50().unwrap();
        let p95 = h.p95().unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!((p50 - 0.05).abs() / 0.05 < 0.15, "{p50}");
        assert!((p99 - 0.099).abs() / 0.099 < 0.15, "{p99}");
        assert!(p99 <= h.max());
    }

    #[test]
    fn extremes_clamp_not_panic() {
        let mut h = LatencyHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(1e9);
        assert_eq!(h.count(), 4);
        assert!(h.percentile(100.0).unwrap() >= 1e9 - 1.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 1..=50u32 {
            a.record(i as f64 * 1e-3);
            both.record(i as f64 * 1e-3);
        }
        for i in 51..=100u32 {
            b.record(i as f64 * 1e-3);
            both.record(i as f64 * 1e-3);
        }
        a.merge(&b);
        assert_eq!(a.buckets, both.buckets);
        assert_eq!(a.count(), both.count());
        // Addition order differs between merging and direct recording, so
        // the sums agree only up to rounding.
        assert!((a.sum() - both.sum()).abs() < 1e-9);
        assert_eq!(a.max().to_bits(), both.max().to_bits());
        for p in [1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), both.percentile(p), "p{p}");
        }
    }

    #[test]
    fn mean_and_sum_track_finite_samples() {
        let mut h = LatencyHistogram::new();
        h.record(1.0);
        h.record(3.0);
        assert!((h.sum() - 4.0).abs() < 1e-12);
        assert!((h.mean().unwrap() - 2.0).abs() < 1e-12);
        assert!((h.max() - 3.0).abs() < 1e-12);
    }
}
