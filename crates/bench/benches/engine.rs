//! Criterion micro-bench: Stage API dispatch overhead.
//!
//! Measures the fixed cost of pushing a batch of trivial tasks through
//! the engine's execution pool — context construction, panic catching,
//! timing, and result collection — at 1, 4, and 16 physical threads, and
//! the end-to-end `run_stage` path including scheduling and tracing.
//! This is the overhead every stage of every driver pays per task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpdbscan_engine::{pool, CostModel, Engine, RetryPolicy};
use std::hint::black_box;
use std::time::Duration;

const TASKS: usize = 256;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_dispatch");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(TASKS as u64));
    for threads in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("run_batch_trivial", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let inputs: Vec<u64> = (0..TASKS as u64).collect();
                    let batch = pool::run_batch(
                        threads,
                        "bench:trivial",
                        8,
                        RetryPolicy::none(),
                        inputs,
                        |_ctx, x| Ok(black_box(x).wrapping_mul(31)),
                    )
                    .expect("no failures");
                    black_box(batch.outputs.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_run_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run_stage");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(TASKS as u64));
    // Full path: pool dispatch + scheduling + metrics + trace spans.
    group.bench_function("trivial_tasks", |b| {
        let engine = Engine::with_cost_model(8, CostModel::free());
        b.iter(|| {
            let inputs: Vec<u64> = (0..TASKS as u64).collect();
            let r = engine
                .run_stage("bench:stage", inputs, |_ctx, x| {
                    Ok(black_box(x).wrapping_mul(31))
                })
                .expect("no failures");
            engine.reset();
            black_box(r.outputs.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dispatch, bench_run_stage);
criterion_main!(benches);
