//! Criterion micro-bench: `(ε,ρ)`-region queries.
//!
//! Covers the §7.6 anatomy claims at micro scale:
//! * query cost vs ρ (coarser ρ → fewer sub-cells → faster queries);
//! * defragmentation + MBR skipping vs a single monolithic dictionary
//!   (the §5.2 ablation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec};
use std::hint::black_box;
use std::time::Duration;

fn bench_rho(c: &mut Criterion) {
    let data = synth::geolife_like(SynthConfig::new(20_000));
    let mut group = c.benchmark_group("region_query_rho");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for rho in [0.10, 0.05, 0.01] {
        let spec = GridSpec::new(3, 0.5, rho).expect("valid grid");
        let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, p)| p));
        let index = DictionaryIndex::new(dict, 1 << 14);
        let queries: Vec<&[f64]> = data.iter().take(200).map(|(_, p)| p).collect();
        group.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, _| {
            b.iter(|| {
                let mut total = 0u64;
                for q in &queries {
                    total += index.neighbor_density(black_box(q));
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

fn bench_defrag_ablation(c: &mut Criterion) {
    let data = synth::geolife_like(SynthConfig::new(20_000));
    let spec = GridSpec::new(3, 0.5, 0.01).expect("valid grid");
    let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, p)| p));
    let queries: Vec<&[f64]> = data.iter().take(200).map(|(_, p)| p).collect();

    let mut group = c.benchmark_group("region_query_defrag");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let single = DictionaryIndex::single(dict.clone());
    group.bench_function("single_dictionary", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &queries {
                total += single.neighbor_density(black_box(q));
            }
            black_box(total)
        })
    });
    let frag = DictionaryIndex::new(dict, 4096);
    group.bench_function("defragmented_with_mbr_skip", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for q in &queries {
                total += frag.neighbor_density(black_box(q));
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rho, bench_defrag_ablation);
criterion_main!(benches);
