//! Criterion micro-bench: pair-counting metrics at the §7.5 accuracy
//! scale (100k points) — linear-time contingency-table implementations.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_metrics::{
    adjusted_rand_index, normalized_mutual_info, rand_index, Clustering, NoisePolicy,
};
use std::hint::black_box;
use std::time::Duration;

fn clusterings(n: usize) -> (Clustering, Clustering) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = Clustering::new(
        (0..n)
            .map(|_| {
                if rng.gen_bool(0.05) {
                    None
                } else {
                    Some(rng.gen_range(0..12u32))
                }
            })
            .collect(),
    );
    let b = Clustering::new(
        a.labels()
            .iter()
            .map(|l| {
                if rng.gen_bool(0.02) {
                    None
                } else {
                    l.map(|v| (v + 1) % 12)
                }
            })
            .collect(),
    );
    (a, b)
}

fn bench_metrics(c: &mut Criterion) {
    let (a, b) = clusterings(100_000);
    let mut group = c.benchmark_group("clustering_metrics_100k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("rand_index", |bch| {
        bch.iter(|| black_box(rand_index(&a, &b, NoisePolicy::SingleCluster)))
    });
    group.bench_function("adjusted_rand_index", |bch| {
        bch.iter(|| black_box(adjusted_rand_index(&a, &b, NoisePolicy::SingleCluster)))
    });
    group.bench_function("nmi", |bch| {
        bch.iter(|| black_box(normalized_mutual_info(&a, &b, NoisePolicy::SingleCluster)))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
