//! Criterion micro-bench: two-level cell dictionary construction and
//! wire encoding (the Phase I-2 costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_grid::{CellDictionary, GridSpec};
use std::hint::black_box;
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let data = synth::cosmo_like(SynthConfig::new(50_000));
    let mut group = c.benchmark_group("dictionary_build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for eps in [0.4, 1.6] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            let spec = GridSpec::new(3, eps, 0.01).expect("valid grid");
            b.iter(|| {
                let dict =
                    CellDictionary::build_from_points(spec.clone(), data.iter().map(|(_, p)| p));
                black_box(dict.num_cells())
            })
        });
    }
    group.finish();
}

fn bench_encode_decode(c: &mut Criterion) {
    let data = synth::cosmo_like(SynthConfig::new(50_000));
    let spec = GridSpec::new(3, 0.8, 0.01).expect("valid grid");
    let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, p)| p));
    let mut group = c.benchmark_group("dictionary_wire");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("encode", |b| b.iter(|| black_box(dict.encode().len())));
    let wire = dict.encode();
    group.bench_function("decode", |b| {
        b.iter(|| {
            let d = CellDictionary::decode(black_box(wire.clone())).expect("valid wire");
            black_box(d.num_cells())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_encode_decode);
criterion_main!(benches);
