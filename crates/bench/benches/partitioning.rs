//! Criterion micro-bench / ablation: partitioning strategies.
//!
//! Compares the cost of producing data splits under
//! * pseudo random partitioning (RP-DBSCAN, cells dealt randomly),
//! * true random partitioning (the naive §2.2.1 strategy),
//! * the three region-split partitioners (ESP/RBP/CBP) — the paper's
//!   "expensive data split" problem (§1.1 problem 1).

use criterion::{criterion_group, criterion_main, Criterion};
use rpdbscan_baselines::region::{split_regions, SplitStrategy};
use rpdbscan_core::partition::{group_by_cell, pseudo_random_partition, true_random_partition};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_grid::GridSpec;
use std::hint::black_box;
use std::time::Duration;

fn bench_partitioning(c: &mut Criterion) {
    let data = synth::geolife_like(SynthConfig::new(40_000));
    let spec = GridSpec::new(3, 0.3, 0.01).expect("valid grid");
    let k = 32;
    let eps = 0.3;

    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("pseudo_random_cells", |b| {
        b.iter(|| {
            let cells = group_by_cell(&spec, &data);
            black_box(pseudo_random_partition(cells, k, 0).len())
        })
    });
    group.bench_function("true_random_points", |b| {
        b.iter(|| black_box(true_random_partition(&spec, &data, k, 0).len()))
    });
    for (name, strategy) in [
        ("region_even_split", SplitStrategy::EvenSplit),
        ("region_reduced_boundary", SplitStrategy::ReducedBoundary),
        ("region_cost_based", SplitStrategy::CostBased),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(split_regions(&data, k, eps, strategy).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
