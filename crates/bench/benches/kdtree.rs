//! Criterion micro-bench: kd-tree construction and radius queries — the
//! index under both the sub-dictionary candidate search (Lemma 5.6) and
//! the exact-DBSCAN baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_geom::KdTree;
use std::hint::black_box;
use std::time::Duration;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree_build");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for n in [10_000usize, 50_000] {
        let data = synth::cosmo_like(SynthConfig::new(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let t = KdTree::build(3, data.flat().to_vec(), (0..data.len() as u32).collect());
                black_box(t.len())
            })
        });
    }
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let data = synth::cosmo_like(SynthConfig::new(50_000));
    let tree = KdTree::build(3, data.flat().to_vec(), (0..data.len() as u32).collect());
    let queries: Vec<&[f64]> = data.iter().take(500).map(|(_, p)| p).collect();
    let mut group = c.benchmark_group("kdtree_radius_query");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for radius in [0.4, 1.6] {
        group.bench_with_input(BenchmarkId::from_parameter(radius), &radius, |b, &r| {
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    tree.for_each_within(black_box(q), r, |_, _| total += 1);
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build, bench_query);
criterion_main!(benches);
