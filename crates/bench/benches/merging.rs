//! Criterion micro-bench / ablation: progressive graph merging.
//!
//! Measures a tournament over realistic cell subgraphs, and the §6.1.4
//! ablation — merging with vs without redundant-full-edge reduction (the
//! reduction is what keeps later rounds cheap, Figure 17).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_core::graph::{CellSubgraph, CellType};
use rpdbscan_core::merge::{merge_pair, tournament};
use std::hint::black_box;
use std::time::Duration;

/// Builds `k` subgraphs over a shared core-cell universe, mimicking
/// Phase II output: each partition knows a disjoint slice of vertex types
/// and contributes edges into the whole universe.
fn synth_subgraphs(k: usize, cells: u32, edges_per_graph: usize, seed: u64) -> Vec<CellSubgraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let slice = cells / k as u32;
    (0..k)
        .map(|i| {
            let mut g = CellSubgraph::new();
            let lo = i as u32 * slice;
            let hi = if i == k - 1 { cells } else { lo + slice };
            for c in lo..hi {
                g.set_type(
                    c,
                    if rng.gen_bool(0.8) {
                        CellType::Core
                    } else {
                        CellType::NonCore
                    },
                );
            }
            for _ in 0..edges_per_graph {
                let from = rng.gen_range(lo..hi);
                // Edges target nearby cells, as real reachability does.
                let to = (from as i64 + rng.gen_range(-40..40)).clamp(0, cells as i64 - 1) as u32;
                if from != to {
                    g.add_edge(from, to);
                }
            }
            g
        })
        .collect()
}

fn bench_tournament(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_merging");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("tournament_16x5000_edges", |b| {
        b.iter_with_setup(
            || synth_subgraphs(16, 20_000, 5_000, 7),
            |graphs| black_box(tournament(graphs, |_, _| {}).num_edges()),
        )
    });
    group.bench_function("single_merge_pair", |b| {
        b.iter_with_setup(
            || {
                let mut gs = synth_subgraphs(2, 20_000, 20_000, 9);
                (gs.remove(0), gs.remove(0))
            },
            |(g1, g2)| black_box(merge_pair(g1, g2).num_edges()),
        )
    });
    // Ablation: union without edge reduction (what merging would cost if
    // cycles were kept — the edge count never shrinks).
    group.bench_function("union_without_reduction", |b| {
        b.iter_with_setup(
            || synth_subgraphs(16, 20_000, 5_000, 7),
            |graphs| {
                let mut all = CellSubgraph::new();
                let mut edges = 0usize;
                for g in graphs {
                    for (&cell, &t) in g.types().iter() {
                        all.set_type(cell, t);
                    }
                    for &(a, b2) in g.edges().iter() {
                        all.add_edge(a, b2);
                    }
                    edges = all.num_edges();
                }
                black_box(edges)
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_tournament);
criterion_main!(benches);
