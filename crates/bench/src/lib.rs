//! Shared harness for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library holds the common pieces: the data-set registry
//! with each set's ε ladder (§7.1.4 uses `ε₁₀ · {⅛, ¼, ½, 1}` where
//! `ε₁₀` yields about ten clusters), the algorithm runners producing
//! uniform result rows, and CSV output under `target/experiments/`.
//!
//! Scale: the paper's data sets hold 10⁷–10⁹ points; the default harness
//! scale keeps every experiment minutes-fast on a laptop. Set
//! `RP_SCALE=4` (or any factor) to grow every data set proportionally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rpdbscan_baselines::{NgDbscan, NgParams, RegionDbscan, RegionParams};
use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_data::synth;
use rpdbscan_data::SynthConfig;
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_json::ToJson;
use std::io::Write;
use std::path::PathBuf;

/// The paper's default minPts for the large data sets, scaled down with
/// the data (§7.1.4 uses 100 at 10⁷–10⁹ points).
pub const MIN_PTS: usize = 25;
/// Default ρ (§7.1.4: 0.01 gives 100% DBSCAN-equivalent clustering).
pub const RHO: f64 = 0.01;
/// Virtual workers standing in for the paper's 40 cores.
pub const WORKERS: usize = 8;
/// Partitions per worker for RP-DBSCAN.
pub const PARTS_PER_WORKER: usize = 2;

/// One evaluation data set: a generator plus its calibrated ε ladder.
pub struct DataSpec {
    /// Data-set name (mirrors the paper's Table 3 rows).
    pub name: &'static str,
    /// Base point count at scale 1.
    pub base_n: usize,
    /// ε₁₀: the radius yielding on the order of ten clusters.
    pub eps10: f64,
    /// minPts used for this set.
    pub min_pts: usize,
    /// Generator.
    pub gen: fn(usize, u64) -> Dataset,
}

impl DataSpec {
    /// The ε ladder `ε₁₀ · {⅛, ¼, ½, 1}` of §7.1.4.
    pub fn eps_ladder(&self) -> [f64; 4] {
        [
            self.eps10 / 8.0,
            self.eps10 / 4.0,
            self.eps10 / 2.0,
            self.eps10,
        ]
    }

    /// Generates the data set at the global scale factor.
    pub fn generate(&self) -> Dataset {
        let n = (self.base_n as f64 * scale()) as usize;
        (self.gen)(n, 42)
    }
}

/// The four Table-3 stand-ins (see DESIGN.md for each substitution).
pub fn datasets() -> Vec<DataSpec> {
    vec![
        DataSpec {
            name: "GeoLife-like",
            base_n: 40_000,
            eps10: 0.8,
            min_pts: MIN_PTS,
            gen: |n, seed| synth::geolife_like(SynthConfig::new(n).with_seed(seed)),
        },
        DataSpec {
            name: "Cosmo-like",
            base_n: 40_000,
            eps10: 1.6,
            min_pts: MIN_PTS,
            gen: |n, seed| synth::cosmo_like(SynthConfig::new(n).with_seed(seed)),
        },
        DataSpec {
            name: "OSM-like",
            base_n: 60_000,
            eps10: 1.2,
            min_pts: MIN_PTS,
            gen: |n, seed| synth::osm_like(SynthConfig::new(n).with_seed(seed)),
        },
        DataSpec {
            name: "TeraClick-like",
            base_n: 20_000,
            eps10: 800.0,
            min_pts: MIN_PTS,
            gen: |n, seed| synth::teraclick_like(SynthConfig::new(n).with_seed(seed)),
        },
    ]
}

/// Global scale factor from `RP_SCALE` (default 1).
pub fn scale() -> f64 {
    std::env::var("RP_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(1.0)
}

/// One algorithm run distilled to the quantities the paper plots.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Algorithm name.
    pub algo: String,
    /// Data-set name.
    pub dataset: String,
    /// ε used.
    pub eps: f64,
    /// Simulated elapsed seconds (Figure 11 / Table 6).
    pub elapsed: f64,
    /// Local-clustering load imbalance (Figure 13).
    pub load_imbalance: f64,
    /// Total points processed across splits (Figure 14).
    pub points_processed: u64,
    /// Clusters found.
    pub clusters: usize,
    /// Noise points.
    pub noise: usize,
}

rpdbscan_json::impl_to_json!(RunRow {
    algo,
    dataset,
    eps,
    elapsed,
    load_imbalance,
    points_processed,
    clusters,
    noise,
});

/// Runs RP-DBSCAN and produces its row (plus the raw output for callers
/// needing more, e.g. edge counts).
pub fn run_rp(
    data: &Dataset,
    name: &str,
    eps: f64,
    min_pts: usize,
    workers: usize,
) -> (
    RunRow,
    rpdbscan_core::RpDbscanOutput,
    rpdbscan_engine::EngineReport,
) {
    let engine = Engine::with_cost_model(workers, CostModel::default());
    let params = RpDbscanParams::new(eps, min_pts)
        .with_rho(RHO)
        .with_partitions(workers * PARTS_PER_WORKER);
    let out = RpDbscan::new(params)
        .expect("valid params")
        .run(data, &engine)
        .expect("run succeeds");
    let report = engine.report();
    let row = RunRow {
        algo: "RP-DBSCAN".into(),
        dataset: name.into(),
        eps,
        elapsed: report.total_elapsed(),
        load_imbalance: report.load_imbalance_with_prefix("phase2"),
        points_processed: out.stats.points_processed,
        clusters: out.clustering.num_clusters(),
        noise: out.clustering.noise_count(),
    };
    (row, out, report)
}

/// Runs one region-split baseline and produces its row.
pub fn run_region(
    data: &Dataset,
    name: &str,
    algo: &str,
    params: RegionParams,
    workers: usize,
) -> (RunRow, rpdbscan_engine::EngineReport) {
    let engine = Engine::with_cost_model(workers, CostModel::default());
    let out = RegionDbscan::new(params)
        .run(data, &engine)
        .expect("run succeeds");
    let report = engine.report();
    let row = RunRow {
        algo: algo.into(),
        dataset: name.into(),
        eps: params.eps,
        elapsed: report.total_elapsed(),
        load_imbalance: report.load_imbalance_with_prefix("local:"),
        points_processed: out.points_processed,
        clusters: out.clustering.num_clusters(),
        noise: out.clustering.noise_count(),
    };
    (row, report)
}

/// Runs NG-DBSCAN and produces its row.
pub fn run_ng(data: &Dataset, name: &str, eps: f64, min_pts: usize, workers: usize) -> RunRow {
    let engine = Engine::with_cost_model(workers, CostModel::default());
    let out = NgDbscan::new(NgParams::new(eps, min_pts))
        .run(data, &engine)
        .expect("run succeeds");
    let report = engine.report();
    RunRow {
        algo: "NG-DBSCAN".into(),
        dataset: name.into(),
        eps,
        elapsed: report.total_elapsed(),
        load_imbalance: report.load_imbalance_with_prefix("ng:descend"),
        points_processed: out.points_processed,
        clusters: out.clustering.num_clusters(),
        noise: out.clustering.noise_count(),
    }
}

/// Directory experiment CSVs land in.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes rows as CSV (header from field names, alphabetical) under
/// `target/experiments/<name>.csv` and returns the path.
pub fn write_csv<T: ToJson>(name: &str, rows: &[T]) -> PathBuf {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut w = std::io::BufWriter::new(std::fs::File::create(&path).expect("create csv"));
    for (i, row) in rows.iter().enumerate() {
        let v = row.to_json();
        let obj = v.as_object().expect("row is a struct");
        if i == 0 {
            let header: Vec<&str> = obj.keys().map(|k| k.as_str()).collect();
            writeln!(w, "{}", header.join(",")).expect("write header");
        }
        let line: Vec<String> = obj.values().map(|v| v.csv_cell()).collect();
        writeln!(w, "{}", line.join(",")).expect("write row");
    }
    println!("wrote {}", path.display());
    path
}

/// Saves a multi-series line chart as `target/experiments/<name>.svg`.
pub fn save_line_chart(
    name: &str,
    title: &str,
    x_label: &str,
    y_label: &str,
    log_y: bool,
    series: &[(String, Vec<(f64, f64)>)],
) {
    let mut chart = rpdbscan_plot::LineChart::new(title, x_label, y_label);
    chart.log_y = log_y;
    for (label, pts) in series {
        chart.add(label, pts.clone());
    }
    let path = experiments_dir().join(format!("{name}.svg"));
    chart.save(&path, 560.0, 360.0).expect("write svg");
    println!("wrote {}", path.display());
}

/// Collects `(x=eps, y=value)` series per algorithm from result rows of
/// one data set.
pub fn rows_to_series(
    rows: &[RunRow],
    dataset: &str,
    y: impl Fn(&RunRow) -> f64,
) -> Vec<(String, Vec<(f64, f64)>)> {
    let mut order: Vec<String> = Vec::new();
    for r in rows.iter().filter(|r| r.dataset == dataset) {
        if !order.contains(&r.algo) {
            order.push(r.algo.clone());
        }
    }
    order
        .into_iter()
        .map(|algo| {
            let mut pts: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.dataset == dataset && r.algo == algo)
                .map(|r| (r.eps, y(r)))
                .collect();
            pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eps"));
            (algo, pts)
        })
        .collect()
}

/// The standard region-split baseline set for a given ε/minPts/k.
pub fn region_baselines(eps: f64, min_pts: usize, k: usize) -> Vec<(&'static str, RegionParams)> {
    vec![
        ("ESP-DBSCAN", RegionParams::esp(eps, min_pts, RHO, k)),
        ("RBP-DBSCAN", RegionParams::rbp(eps, min_pts, RHO, k)),
        ("CBP-DBSCAN", RegionParams::cbp(eps, min_pts, RHO, k)),
        ("SPARK-DBSCAN", RegionParams::spark(eps, min_pts, k)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_geometric() {
        let d = &datasets()[0];
        let l = d.eps_ladder();
        assert_eq!(l[3], d.eps10);
        assert!((l[0] * 8.0 - d.eps10).abs() < 1e-12);
    }

    #[test]
    fn registry_generates() {
        for spec in datasets() {
            let small = (spec.gen)(100, 1);
            assert_eq!(small.len(), 100, "{}", spec.name);
        }
    }

    #[test]
    fn csv_written() {
        let rows = vec![RunRow {
            algo: "x".into(),
            dataset: "y".into(),
            eps: 1.0,
            elapsed: 2.0,
            load_imbalance: 1.5,
            points_processed: 10,
            clusters: 2,
            noise: 0,
        }];
        let p = write_csv("harness_selftest", &rows);
        let text = std::fs::read_to_string(p).unwrap();
        // serde_json maps are key-sorted, so columns come out alphabetical.
        assert!(text.starts_with("algo,clusters,dataset,"));
        assert!(text.contains("x,2,y,2.0,1.0,1.5,0,10"));
    }
}
