//! Incremental vs full re-cluster throughput for the streaming subsystem.
//!
//! Preloads a Cosmo-like workload minus one micro-batch, then measures the
//! wall-clock cost of absorbing that batch incrementally
//! (`StreamingRpDbscan::insert_batch` + `snapshot`) against re-clustering
//! the full data set from scratch (`RpDbscan::run_local`), across batch
//! fractions of 0.1%, 1%, and 10%. Results land in `BENCH_stream.json`
//! (plus the usual CSV under `target/experiments/`).
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin stream_throughput
//! cargo run --release -p rpdbscan-bench --bin stream_throughput -- --smoke
//! ```
//!
//! `--smoke` shrinks the workload for CI: it exercises the same code path
//! and emits the same (well-formed) JSON, but its timings are not
//! meaningful.

use rpdbscan_bench::{scale, write_csv, MIN_PTS, RHO};
use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_data::synth::cosmo_like;
use rpdbscan_data::{shuffled_order, SynthConfig};
use rpdbscan_json::{ToJson, Value};
use rpdbscan_metrics::{rand_index, NoisePolicy};
use rpdbscan_stream::StreamingRpDbscan;
use std::io::Write;
use std::time::Instant;

struct StreamRow {
    fraction: f64,
    batch_points: usize,
    total_points: usize,
    incremental_sec: f64,
    full_sec: f64,
    speedup: f64,
    clusters: usize,
    rand_index: f64,
}

rpdbscan_json::impl_to_json!(StreamRow {
    fraction,
    batch_points,
    total_points,
    incremental_sec,
    full_sec,
    speedup,
    clusters,
    rand_index
});

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke {
        4_000
    } else {
        (100_000.0 * scale()) as usize
    };
    let eps = 0.8; // Cosmo-like eps10 / 2
    let params = RpDbscanParams::new(eps, MIN_PTS).with_rho(RHO);
    let data = cosmo_like(SynthConfig::new(n).with_seed(42));
    let order = shuffled_order(&data, 7);
    println!(
        "Streaming throughput on Cosmo-like (n={n}), eps={eps}, minPts={MIN_PTS}, rho={RHO}{}",
        if smoke { " [smoke]" } else { "" }
    );

    // The full re-cluster baseline: identical final data set regardless of
    // the batch fraction, so time it once.
    let full_data = {
        let mut flat = Vec::with_capacity(n * data.dim());
        for &i in &order {
            flat.extend_from_slice(data.point_at(i as usize));
        }
        rpdbscan_geom::Dataset::from_flat(data.dim(), flat).expect("well-formed flat buffer")
    };
    let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    let full = RpDbscan::new(params)
        .expect("valid params")
        .run_local(&full_data)
        .expect("full run succeeds");
    let full_sec = t0.elapsed().as_secs_f64();
    println!(
        "full re-cluster: {:.3}s, {} clusters",
        full_sec,
        full.clustering.num_clusters()
    );

    let mut rows = Vec::new();
    println!(
        "{:>9} {:>12} {:>16} {:>10} {:>9}",
        "fraction", "batch_pts", "incremental(s)", "full(s)", "speedup"
    );
    for fraction in [0.001, 0.01, 0.1] {
        let batch = ((n as f64 * fraction) as usize).max(1);
        let preload = n - batch;
        let mut s = StreamingRpDbscan::new(data.dim(), params).expect("valid stream params");
        let mut flat = Vec::with_capacity(preload * data.dim());
        for &i in &order[..preload] {
            flat.extend_from_slice(data.point_at(i as usize));
        }
        s.insert_batch(&flat).expect("preload succeeds");

        let mut tail = Vec::with_capacity(batch * data.dim());
        for &i in &order[preload..] {
            tail.extend_from_slice(data.point_at(i as usize));
        }
        let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        s.insert_batch(&tail).expect("micro-batch succeeds");
        let snap = s.snapshot();
        let incremental_sec = t0.elapsed().as_secs_f64();

        let ri = rand_index(&snap.labels, &full.clustering, NoisePolicy::SingleCluster);
        assert_eq!(ri, 1.0, "incremental result diverged from full re-cluster");
        let speedup = full_sec / incremental_sec;
        println!(
            "{fraction:>9} {batch:>12} {incremental_sec:>16.4} {full_sec:>10.3} {speedup:>8.1}x"
        );
        rows.push(StreamRow {
            fraction,
            batch_points: batch,
            total_points: n,
            incremental_sec,
            full_sec,
            speedup,
            clusters: snap.labels.num_clusters(),
            rand_index: ri,
        });
    }

    write_csv("stream_throughput", &rows);
    let mut doc = Value::object();
    doc.insert("workload", "Cosmo-like");
    doc.insert("total_points", n);
    doc.insert("eps", eps);
    doc.insert("min_pts", MIN_PTS);
    doc.insert("rho", RHO);
    doc.insert("smoke", Value::Bool(smoke));
    doc.insert(
        "rows",
        Value::Array(rows.iter().map(|r| r.to_json()).collect()),
    );
    let path = "BENCH_stream.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create json"));
    writeln!(f, "{doc}").expect("write json");
    println!("wrote {path}");
}
