//! Appendix B.2 (Figures 18–19, Table 8): impact of data skewness.
//!
//! Gaussian-mixture data (Appendix B.1) with skewness coefficient
//! α ∈ {1/8, 1/4, 1/2, 1} and dimensionality d ∈ {3, 4, 5}:
//!
//! * Table 8 — two-level dictionary size vs α and d;
//! * Figure 19a — RP-DBSCAN's load imbalance vs α;
//! * Figure 19b — RP-DBSCAN's total elapsed time vs α.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig19_skewness
//! ```

use rpdbscan_bench::*;
use rpdbscan_data::{synth, SynthConfig};

struct SkewRow {
    dim: usize,
    alpha: f64,
    dict_bytes: u64,
    load_imbalance: f64,
    elapsed: f64,
    clusters: usize,
}

rpdbscan_json::impl_to_json!(SkewRow {
    dim,
    alpha,
    dict_bytes,
    load_imbalance,
    elapsed,
    clusters
});

fn main() {
    // Appendix B.1: range [0,100]^d, eps = 5, minPts = 100, rho = 0.01 —
    // minPts scaled with the harness point count.
    let n = (60_000.0 * scale()) as usize;
    let eps = 5.0;
    let min_pts = 40;
    let alphas = [0.125, 0.25, 0.5, 1.0];

    let mut rows = Vec::new();
    println!(
        "{:>3} {:>8} {:>14} {:>16} {:>12} {:>9}",
        "d", "alpha", "dict bytes", "load imbalance", "elapsed(s)", "clusters"
    );
    for dim in [3usize, 4, 5] {
        for alpha in alphas {
            let data = synth::gaussian_mixture(SynthConfig::new(n).with_seed(7), dim, alpha);
            let (row, out, _) = run_rp(&data, "mixture", eps, min_pts, WORKERS);
            println!(
                "{dim:>3} {alpha:>8.3} {:>14} {:>16.2} {:>12.3} {:>9}",
                out.stats.dict_size_bits / 8,
                row.load_imbalance,
                row.elapsed,
                row.clusters
            );
            rows.push(SkewRow {
                dim,
                alpha,
                dict_bytes: out.stats.dict_size_bits / 8,
                load_imbalance: row.load_imbalance,
                elapsed: row.elapsed,
                clusters: row.clusters,
            });
        }
    }
    write_csv("fig19_table8_skewness", &rows);

    // Figure 18: the 2-d mixtures at each skewness coefficient, rendered
    // as cluster scatter plots.
    for alpha in alphas {
        let data = synth::gaussian_mixture(SynthConfig::new(20_000).with_seed(7), 2, alpha);
        let (_, out, _) = run_rp(&data, "mixture-2d", eps, min_pts, WORKERS);
        let path = experiments_dir().join(format!("fig18_alpha_{alpha}.svg"));
        rpdbscan_plot::ScatterPlot::new(
            &data,
            &out.clustering,
            &format!("Fig 18: 2-d synthetic, alpha = {alpha}"),
        )
        .save(&path, 420.0, 380.0)
        .expect("write svg");
        println!("wrote {}", path.display());
    }

    // Figure 19 line charts: per-dimension imbalance and elapsed vs alpha.
    for (metric, field, log) in [
        ("fig19a_load_imbalance", 0usize, false),
        ("fig19b_elapsed", 1usize, false),
    ] {
        let series: Vec<(String, Vec<(f64, f64)>)> = [3usize, 4, 5]
            .iter()
            .map(|&d| {
                let pts = rows
                    .iter()
                    .filter(|r| r.dim == d)
                    .map(|r| {
                        let y = if field == 0 {
                            r.load_imbalance
                        } else {
                            r.elapsed
                        };
                        (r.alpha, y)
                    })
                    .collect();
                (format!("{d}D"), pts)
            })
            .collect();
        save_line_chart(
            metric,
            &format!(
                "Fig 19: {} vs skewness",
                if field == 0 {
                    "load imbalance"
                } else {
                    "elapsed"
                }
            ),
            "alpha",
            if field == 0 {
                "slowest/fastest"
            } else {
                "seconds"
            },
            log,
            &series,
        );
    }
    println!("\nPaper: dictionary shrinks as alpha grows (fewer non-empty cells) and as");
    println!("d falls; load imbalance rises mildly with alpha (1.14 -> 2.17 in 5-d);");
    println!("elapsed time generally rises with alpha except where the smaller");
    println!("dictionary offsets it (3-d).");
}
