//! Table 4 / Figure 16: clustering accuracy of RP-DBSCAN against exact
//! DBSCAN on the three synthetic accuracy data sets for
//! ρ ∈ {0.10, 0.05, 0.01}, measured by the Rand index (§7.5).
//!
//! The figure-16 visual is emitted as labeled CSVs (point, cluster) under
//! `target/experiments/`, plottable with any tool.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin table4_accuracy
//! ```

use rpdbscan_baselines::exact_dbscan;
use rpdbscan_bench::*;
use rpdbscan_core::{DensityBackendKind, RpDbscan, RpDbscanParams};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_metrics::{adjusted_rand_index, rand_index, NoisePolicy};

struct AccuracyRow {
    dataset: String,
    rho: f64,
    rand_index: f64,
    adjusted_rand_index: f64,
    clusters_exact: usize,
    clusters_rp: usize,
}

rpdbscan_json::impl_to_json!(AccuracyRow {
    dataset,
    rho,
    rand_index,
    adjusted_rand_index,
    clusters_exact,
    clusters_rp
});

fn main() {
    // The paper uses 100k points per accuracy set; scaled by RP_SCALE.
    let n = (100_000.0 * scale()) as usize;
    let sets: Vec<(&str, Dataset, f64, usize)> = vec![
        ("Moons", synth::moons(SynthConfig::new(n), 0.05), 0.15, 10),
        (
            "Blobs",
            synth::blobs(SynthConfig::new(n), 6, 1.5, 100.0),
            1.0,
            10,
        ),
        (
            "Chameleon",
            synth::chameleon_like(SynthConfig::new(n)),
            1.2,
            10,
        ),
    ];

    let mut rows = Vec::new();
    println!(
        "{:<12} {:>8} {:>8} {:>8}   (Rand index; paper Table 4)",
        "data set", "rho=0.10", "rho=0.05", "rho=0.01"
    );
    let engine = Engine::with_cost_model(WORKERS, CostModel::free());
    for (name, data, eps, min_pts) in &sets {
        let exact = exact_dbscan(data, *eps, *min_pts);
        print!("{name:<12}");
        for rho in [0.10, 0.05, 0.01] {
            let params = RpDbscanParams::new(*eps, *min_pts)
                .with_rho(rho)
                .with_partitions(WORKERS * PARTS_PER_WORKER);
            let out = RpDbscan::new(params)
                .expect("valid params")
                .run(data, &engine)
                .expect("run succeeds");
            let ri = rand_index(
                &exact.clustering,
                &out.clustering,
                NoisePolicy::SingleCluster,
            );
            let ari = adjusted_rand_index(
                &exact.clustering,
                &out.clustering,
                NoisePolicy::SingleCluster,
            );
            print!(" {ri:>8.4}");
            rows.push(AccuracyRow {
                dataset: name.to_string(),
                rho,
                rand_index: ri,
                adjusted_rand_index: ari,
                clusters_exact: exact.clustering.num_clusters(),
                clusters_rp: out.clustering.num_clusters(),
            });
            // Figure 16: plot data + rendered scatter at the default rho.
            if (rho - 0.01).abs() < 1e-12 {
                let path =
                    experiments_dir().join(format!("fig16_{}_labeled.csv", name.to_lowercase()));
                rpdbscan_data::io::write_labeled_csv(&path, data, &out.clustering, ',')
                    .expect("write labeled csv");
                let svg = experiments_dir().join(format!("fig16_{}.svg", name.to_lowercase()));
                rpdbscan_plot::ScatterPlot::new(
                    data,
                    &out.clustering,
                    &format!("Fig 16: RP-DBSCAN clustering — {name}"),
                )
                .save(&svg, 480.0, 420.0)
                .expect("write svg");
                println!("  wrote {}", svg.display());
            }
        }
        println!();
    }

    // Approximate density backends against the same exact-DBSCAN ground
    // truth (rho fixed at the paper default): the accuracy harness also
    // covers `rpdbscan-density`'s estimators.
    println!(
        "\n{:<12} {:>8} {:>8}   (Rand index; density backends at rho=0.01)",
        "data set", "knn", "sampled"
    );
    for (name, data, eps, min_pts) in &sets {
        let exact = exact_dbscan(data, *eps, *min_pts);
        print!("{name:<12}");
        for kind in [
            DensityBackendKind::MutualKnn { k: 16 },
            DensityBackendKind::SampledCore { sample_frac: 0.3 },
        ] {
            let params = RpDbscanParams::new(*eps, *min_pts)
                .with_partitions(WORKERS * PARTS_PER_WORKER)
                .with_density_backend(kind);
            let out = rpdbscan_density::backend_for(&params)
                .expect("valid backend config")
                .cluster(data, &engine)
                .expect("backend run succeeds");
            let ri = rand_index(
                &exact.clustering,
                &out.clustering,
                NoisePolicy::SingleCluster,
            );
            let ari = adjusted_rand_index(
                &exact.clustering,
                &out.clustering,
                NoisePolicy::SingleCluster,
            );
            print!(" {ri:>8.4}");
            rows.push(AccuracyRow {
                dataset: format!("{name}[{}]", kind.name()),
                rho: 0.01,
                rand_index: ri,
                adjusted_rand_index: ari,
                clusters_exact: exact.clustering.num_clusters(),
                clusters_rp: out.clustering.num_clusters(),
            });
        }
        println!();
    }
    write_csv("table4_accuracy", &rows);
    println!("\nPaper's Table 4: Moons/Blobs 1.00 at every rho; Chameleon 0.98/0.99/1.00.");
    println!("Figure 16 scatter data written as fig16_*_labeled.csv (x,y,cluster).");
}
