//! Ablation: dictionary anatomy (§4.2.2 / §5.2's techniques).
//!
//! Quantifies, on one workload:
//!
//! * the effect of **sub-dictionary capacity** (BSP defragmentation) and
//!   **MBR skipping** on region-query work — fragments skipped, candidate
//!   cells touched, wall time;
//! * the effect of **ρ** on dictionary size and Phase II time (the paper's
//!   Table 5 / Figure 11 interplay).
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin ablation_dictionary
//! ```

use rpdbscan_bench::*;
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_grid::{CellDictionary, DictionaryIndex, GridSpec, QueryStats};
use std::time::Instant;

struct DefragRow {
    capacity: u64,
    fragments: usize,
    skipped_per_query: f64,
    candidates_per_query: f64,
    seconds_per_1k_queries: f64,
}

rpdbscan_json::impl_to_json!(DefragRow {
    capacity,
    fragments,
    skipped_per_query,
    candidates_per_query,
    seconds_per_1k_queries
});

struct RhoRow {
    rho: f64,
    h: u32,
    subcells: usize,
    dict_bytes: u64,
    seconds_per_1k_queries: f64,
}

rpdbscan_json::impl_to_json!(RhoRow {
    rho,
    h,
    subcells,
    dict_bytes,
    seconds_per_1k_queries
});

fn main() {
    let n = (60_000.0 * scale()) as usize;
    let data = synth::geolife_like(SynthConfig::new(n));
    let eps = 0.3;

    // ---- Defragmentation / MBR skipping sweep -----------------------
    println!("Sub-dictionary capacity sweep (rho = {RHO}):");
    println!(
        "{:>12} {:>10} {:>14} {:>16} {:>14}",
        "capacity", "fragments", "skipped/query", "candidates/query", "s/1k queries"
    );
    let spec = GridSpec::new(3, eps, RHO).expect("valid grid");
    let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, p)| p));
    let queries: Vec<&[f64]> = data.iter().step_by(61).map(|(_, p)| p).take(1000).collect();
    let mut defrag_rows = Vec::new();
    for capacity in [u64::MAX, 1 << 16, 1 << 13, 1 << 10] {
        let index = DictionaryIndex::new(dict.clone(), capacity);
        let mut stats = QueryStats::default();
        let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        for q in &queries {
            let s = index.region_query(q, |_, _| {});
            stats.merge(&s);
        }
        let secs = t0.elapsed().as_secs_f64();
        let nq = queries.len() as f64;
        let row = DefragRow {
            capacity,
            fragments: index.num_subdicts(),
            skipped_per_query: stats.subdicts_skipped as f64 / nq,
            candidates_per_query: stats.cells_candidate as f64 / nq,
            seconds_per_1k_queries: secs * 1000.0 / nq,
        };
        println!(
            "{:>12} {:>10} {:>14.1} {:>16.1} {:>14.4}",
            if capacity == u64::MAX {
                "unlimited".to_string()
            } else {
                capacity.to_string()
            },
            row.fragments,
            row.skipped_per_query,
            row.candidates_per_query,
            row.seconds_per_1k_queries
        );
        defrag_rows.push(row);
    }
    write_csv("ablation_defrag", &defrag_rows);

    // ---- rho sweep ---------------------------------------------------
    println!("\nApproximation-rate sweep (unlimited capacity):");
    println!(
        "{:>8} {:>4} {:>12} {:>12} {:>14}",
        "rho", "h", "sub-cells", "dict bytes", "s/1k queries"
    );
    let mut rho_rows = Vec::new();
    for rho in [0.5, 0.1, 0.05, 0.01] {
        let spec = GridSpec::new(3, eps, rho).expect("valid grid");
        let h = spec.h();
        let dict = CellDictionary::build_from_points(spec, data.iter().map(|(_, p)| p));
        let index = DictionaryIndex::single(dict);
        let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        for q in &queries {
            index.region_query(q, |_, _| {});
        }
        let secs = t0.elapsed().as_secs_f64();
        let row = RhoRow {
            rho,
            h,
            subcells: index.dict().num_sub_cells(),
            dict_bytes: index.dict().size_bytes(),
            seconds_per_1k_queries: secs * 1000.0 / queries.len() as f64,
        };
        println!(
            "{:>8} {:>4} {:>12} {:>12} {:>14.4}",
            row.rho, row.h, row.subcells, row.dict_bytes, row.seconds_per_1k_queries
        );
        rho_rows.push(row);
    }
    write_csv("ablation_rho", &rho_rows);
    println!("\nCoarser rho shrinks the dictionary and speeds queries at the cost of");
    println!("approximation (Table 4 quantifies the accuracy side of this trade).");
}
