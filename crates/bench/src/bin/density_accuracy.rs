//! Density-backend accuracy/speed comparison for high-dimensional data.
//!
//! Runs the three [`rpdbscan_density`] backends over a low-dimensional
//! control set and the ≥10-d TeraClick-style shapes where the exact
//! grid's `(2b+1)^d` neighbour machinery is at its worst, reporting per
//! (dataset, backend):
//!
//! * wall-time speedup over the exact grid backend,
//! * Rand index / ARI against the exact labels.
//!
//! Results land in `BENCH_density.json` (plus the usual CSV under
//! `target/experiments/`). The run **aborts with a nonzero exit** if an
//! approximate backend's Rand index drops below [`RAND_FLOOR`] — the CI
//! `density-smoke` job relies on this as a hard accuracy gate. Speedup
//! is recorded but not gated (timing is unreliable on shared runners);
//! a speedup ≤ 1 on the high-d shapes prints a warning.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin density_accuracy
//! cargo run --release -p rpdbscan-bench --bin density_accuracy -- --smoke
//! ```

use rpdbscan_bench::{scale, write_csv, WORKERS};
use rpdbscan_core::{DensityBackendKind, RpDbscanParams};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_density::backend_for;
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_json::{ToJson, Value};
use rpdbscan_metrics::{adjusted_rand_index, rand_index, Clustering, NoisePolicy};
use std::io::Write;
use std::time::Instant;

/// Minimum acceptable Rand index of an approximate backend against the
/// exact labels on these (well-separated) workloads. CI aborts below
/// this; the property tests in `rpdbscan-density` pin the same floor.
const RAND_FLOOR: f64 = 0.95;

struct DensityRow {
    dataset: String,
    dim: usize,
    points: usize,
    backend: String,
    exact_sec: f64,
    backend_sec: f64,
    speedup: f64,
    rand_index: f64,
    adjusted_rand_index: f64,
    clusters_exact: usize,
    clusters_backend: usize,
    noise_backend: usize,
}

rpdbscan_json::impl_to_json!(DensityRow {
    dataset,
    dim,
    points,
    backend,
    exact_sec,
    backend_sec,
    speedup,
    rand_index,
    adjusted_rand_index,
    clusters_exact,
    clusters_backend,
    noise_backend
});

fn timed_cluster(
    params: &RpDbscanParams,
    data: &Dataset,
    engine: &Engine,
) -> (Clustering, f64, &'static str) {
    let backend = backend_for(params).expect("valid backend config");
    let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    let out = backend.cluster(data, engine).expect("backend run succeeds");
    (
        out.clustering,
        t0.elapsed().as_secs_f64(),
        out.stats.backend,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke {
        2_000
    } else {
        (20_000.0 * scale()) as usize
    };

    // (name, data, eps, min_pts): one low-d control where the exact grid
    // is in its comfort zone, plus the high-d shapes it was built to
    // escape. Parameters give well-separated DBSCAN ground truth.
    let sets: Vec<(&str, Dataset, f64, usize)> = vec![
        (
            "Blobs-2d",
            synth::blobs(SynthConfig::new(n), 6, 1.5, 100.0),
            1.0,
            10,
        ),
        (
            "HyperTeraClick-12d",
            synth::hyper_teraclick_like(SynthConfig::new(n), 12),
            40.0,
            10,
        ),
        (
            "HyperTeraClick-16d",
            synth::hyper_teraclick_like(SynthConfig::new(n), 16),
            48.0,
            10,
        ),
    ];
    let knn_k = 16;
    let sample_frac = 0.3;

    println!(
        "Density backends on {} points/set (knn k={knn_k}, sampled s={sample_frac}){}",
        n,
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "{:<20} {:>8} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "data set", "backend", "exact(s)", "approx(s)", "speedup", "RI", "ARI"
    );

    let engine = Engine::with_cost_model(WORKERS, CostModel::free());
    let mut rows = Vec::new();
    let mut floor_violations = 0usize;
    for (name, data, eps, min_pts) in &sets {
        let base = RpDbscanParams::new(*eps, *min_pts);
        let (exact_labels, exact_sec, _) = timed_cluster(&base, data, &engine);

        for kind in [
            DensityBackendKind::MutualKnn { k: knn_k },
            DensityBackendKind::SampledCore { sample_frac },
        ] {
            let params = base.with_density_backend(kind);
            let (labels, backend_sec, tag) = timed_cluster(&params, data, &engine);
            let ri = rand_index(&exact_labels, &labels, NoisePolicy::SingleCluster);
            let ari = adjusted_rand_index(&exact_labels, &labels, NoisePolicy::SingleCluster);
            let speedup = exact_sec / backend_sec.max(1e-9);
            println!(
                "{name:<20} {tag:>8} {exact_sec:>10.3} {backend_sec:>10.3} {speedup:>8.1}x {ri:>8.4} {ari:>8.4}"
            );
            if ri < RAND_FLOOR {
                eprintln!("FAIL: {tag} on {name}: Rand index {ri:.4} below floor {RAND_FLOOR}");
                floor_violations += 1;
            }
            if !smoke && speedup <= 1.0 && data.dim() >= 10 {
                println!("  warning: {tag} gained no wall time over exact on {name}");
            }
            rows.push(DensityRow {
                dataset: name.to_string(),
                dim: data.dim(),
                points: data.len(),
                backend: tag.to_string(),
                exact_sec,
                backend_sec,
                speedup,
                rand_index: ri,
                adjusted_rand_index: ari,
                clusters_exact: exact_labels.num_clusters(),
                clusters_backend: labels.num_clusters(),
                noise_backend: labels.noise_count(),
            });
        }
    }

    write_csv("density_accuracy", &rows);
    let mut doc = Value::object();
    doc.insert("workloads", "Blobs-2d + HyperTeraClick 12d/16d");
    doc.insert("points_per_set", n);
    doc.insert("knn_k", knn_k);
    doc.insert("sample_frac", sample_frac);
    doc.insert("rand_floor", RAND_FLOOR);
    doc.insert("smoke", Value::Bool(smoke));
    doc.insert(
        "rows",
        Value::Array(rows.iter().map(|r| r.to_json()).collect()),
    );
    let path = "BENCH_density.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create json"));
    writeln!(f, "{doc}").expect("write json");
    println!("wrote {path}");

    if floor_violations > 0 {
        eprintln!("{floor_violations} backend result(s) below the Rand floor — aborting");
        std::process::exit(1);
    }
}
