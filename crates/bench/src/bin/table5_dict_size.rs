//! Table 5: size of the two-level cell dictionary as a fraction of the
//! data set, across the ε ladder (§7.6.1).
//!
//! The dictionary size is the analytical bit count of Lemma 4.3 (density
//! integers + cell float positions + `d(h−1)`-bit sub-cell orderings);
//! the data size counts 32-bit floats per coordinate, matching the
//! paper's storage model. The actual broadcast (wire) size is also shown.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin table5_dict_size
//! ```

use rpdbscan_bench::*;
use rpdbscan_grid::{CellDictionary, GridSpec};

struct DictRow {
    dataset: String,
    eps: f64,
    cells: usize,
    subcells: usize,
    dict_bytes: u64,
    wire_bytes: u64,
    data_bytes: usize,
    percent_of_data: f64,
}

rpdbscan_json::impl_to_json!(DictRow {
    dataset,
    eps,
    cells,
    subcells,
    dict_bytes,
    wire_bytes,
    data_bytes,
    percent_of_data
});

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "dataset", "eps", "cells", "sub-cells", "dict bytes", "% of data"
    );
    for spec in datasets() {
        let data = spec.generate();
        let data_bytes = data.paper_size_bytes();
        for eps in spec.eps_ladder() {
            let grid = GridSpec::new(data.dim(), eps, RHO).expect("valid grid");
            let dict = CellDictionary::build_from_points(grid, data.iter().map(|(_, p)| p));
            let dict_bytes = dict.size_bytes();
            let pct = 100.0 * dict_bytes as f64 / data_bytes as f64;
            println!(
                "{:<16} {:>10.3} {:>10} {:>12} {:>12} {:>9.2}%",
                spec.name,
                eps,
                dict.num_cells(),
                dict.num_sub_cells(),
                dict_bytes,
                pct
            );
            rows.push(DictRow {
                dataset: spec.name.into(),
                eps,
                cells: dict.num_cells(),
                subcells: dict.num_sub_cells(),
                dict_bytes,
                wire_bytes: dict.encode().len() as u64,
                data_bytes,
                percent_of_data: pct,
            });
        }
    }
    // Paper-scale density proxy: the paper's sets pack thousands of
    // points per sub-cell (10^7–10^9 points over comparable space), which
    // is where the 0.04–8.2% compression comes from. A dense uniform
    // square reproduces that ratio regime at laptop point counts.
    {
        let n = (500_000.0 * scale()) as usize;
        let data =
            rpdbscan_data::synth::uniform(rpdbscan_data::SynthConfig::new(n).with_seed(3), 2, 5.0);
        let data_bytes = data.paper_size_bytes();
        for eps in [2.5, 5.0] {
            let grid = GridSpec::new(2, eps, RHO).expect("valid grid");
            let dict = CellDictionary::build_from_points(grid, data.iter().map(|(_, p)| p));
            let pct = 100.0 * dict.size_bytes() as f64 / data_bytes as f64;
            println!(
                "{:<16} {:>10.3} {:>10} {:>12} {:>12} {:>9.2}%",
                "Dense-proxy",
                eps,
                dict.num_cells(),
                dict.num_sub_cells(),
                dict.size_bytes(),
                pct
            );
            rows.push(DictRow {
                dataset: "Dense-proxy".into(),
                eps,
                cells: dict.num_cells(),
                subcells: dict.num_sub_cells(),
                dict_bytes: dict.size_bytes(),
                wire_bytes: dict.encode().len() as u64,
                data_bytes,
                percent_of_data: pct,
            });
        }
    }
    write_csv("table5_dict_size", &rows);
    println!("\nPaper's Table 5: 0.04%–8.20% of the data, shrinking as eps grows");
    println!("(larger cells -> fewer entries) and as data sets grow denser.");
    println!("Note: at harness scale the data is sparser per cell than the paper's");
    println!("10^7–10^9-point sets, so absolute percentages sit higher; the eps trend holds.");
}
