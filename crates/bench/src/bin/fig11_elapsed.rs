//! Figure 11 / Table 6: total elapsed time of the six parallel DBSCAN
//! algorithms on the four data sets across the ε ladder.
//!
//! The paper stops any algorithm at 20,000 s; scaled down, this harness
//! stops at `RP_TIMEOUT` simulated seconds (default 600) and reports N/A,
//! mirroring the paper's N/A entries for SPARK-DBSCAN and NG-DBSCAN on
//! the larger sets. NG-DBSCAN is run only on the first (GeoLife-like)
//! data set, as in the paper.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig11_elapsed
//! ```

use rpdbscan_bench::*;

fn main() {
    let mut rows: Vec<RunRow> = Vec::new();
    for (di, spec) in datasets().iter().enumerate() {
        let data = spec.generate();
        println!(
            "\n=== {} (n={}, d={}) ===",
            spec.name,
            data.len(),
            data.dim()
        );
        println!(
            "{:<14} {:>9} {:>12} {:>10}",
            "algorithm", "eps", "elapsed(s)", "clusters"
        );
        for eps in spec.eps_ladder() {
            let (row, _, _) = run_rp(&data, spec.name, eps, spec.min_pts, WORKERS);
            println!(
                "{:<14} {:>9.3} {:>12.3} {:>10}",
                row.algo, eps, row.elapsed, row.clusters
            );
            rows.push(row);
            for (algo, params) in region_baselines(eps, spec.min_pts, WORKERS) {
                let (row, _) = run_region(&data, spec.name, algo, params, WORKERS);
                println!(
                    "{:<14} {:>9.3} {:>12.3} {:>10}",
                    row.algo, eps, row.elapsed, row.clusters
                );
                rows.push(row);
            }
            // NG-DBSCAN: GeoLife only (the paper's other cells are N/A).
            if di == 0 {
                let row = run_ng(&data, spec.name, eps, spec.min_pts, WORKERS);
                println!(
                    "{:<14} {:>9.3} {:>12.3} {:>10}",
                    row.algo, eps, row.elapsed, row.clusters
                );
                rows.push(row);
            } else {
                println!("{:<14} {:>9.3} {:>12} {:>10}", "NG-DBSCAN", eps, "N/A", "-");
            }
        }
    }
    write_csv("fig11_table6_elapsed", &rows);
    for spec in datasets() {
        let series = rows_to_series(&rows, spec.name, |r| r.elapsed);
        save_line_chart(
            &format!("fig11_{}", spec.name.to_lowercase().replace('-', "_")),
            &format!("Fig 11: elapsed time — {}", spec.name),
            "eps",
            "elapsed (s, log)",
            true,
            &series,
        );
    }

    // Headline ratios (the paper's §7.2.1 summary).
    println!("\nSpeed-up of RP-DBSCAN over each baseline (geometric mean across cells):");
    for algo in [
        "ESP-DBSCAN",
        "RBP-DBSCAN",
        "CBP-DBSCAN",
        "SPARK-DBSCAN",
        "NG-DBSCAN",
    ] {
        let mut ratios = Vec::new();
        for r in rows.iter().filter(|r| r.algo == algo) {
            if let Some(rp) = rows
                .iter()
                .find(|x| x.algo == "RP-DBSCAN" && x.dataset == r.dataset && x.eps == r.eps)
            {
                if rp.elapsed > 0.0 {
                    ratios.push(r.elapsed / rp.elapsed);
                }
            }
        }
        if !ratios.is_empty() {
            let gm = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
            let max = ratios.iter().fold(0.0f64, |a, &b| a.max(b));
            println!("  vs {algo:<13} geo-mean {gm:6.2}x   max {max:6.2}x");
        }
    }
}
