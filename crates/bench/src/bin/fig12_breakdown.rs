//! Figure 12: breakdown of RP-DBSCAN's elapsed time into the five
//! phases (I-1 partitioning, I-2 dictionary, II cell graph construction,
//! III-1 merging, III-2 labeling) for each data set at ε₁₀.
//!
//! The paper observes that Phase II dominates (31–68%) and grows with
//! data size, while pre-/post-processing stay small.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig12_breakdown
//! ```

use rpdbscan_bench::*;

struct BreakdownRow {
    dataset: String,
    phase1_1: f64,
    phase1_2: f64,
    phase2: f64,
    phase3_1: f64,
    phase3_2: f64,
}

rpdbscan_json::impl_to_json!(BreakdownRow {
    dataset,
    phase1_1,
    phase1_2,
    phase2,
    phase3_1,
    phase3_2
});

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "dataset", "I-1", "I-2", "II", "III-1", "III-2"
    );
    for spec in datasets() {
        let data = spec.generate();
        let (_, _, report) = run_rp(&data, spec.name, spec.eps10, spec.min_pts, WORKERS);
        // Execution trace (Chrome trace-event JSON, loadable in
        // Perfetto / chrome://tracing): one lane per virtual worker.
        let slug = spec.name.to_lowercase().replace('-', "_");
        let trace_path = experiments_dir().join(format!("fig12_trace_{slug}.json"));
        std::fs::write(&trace_path, report.chrome_trace_json()).expect("write trace");
        println!("wrote {}", trace_path.display());
        let p = [
            report.elapsed_with_prefix("phase1-1"),
            report.elapsed_with_prefix("phase1-2"),
            report.elapsed_with_prefix("phase2"),
            report.elapsed_with_prefix("phase3-1"),
            report.elapsed_with_prefix("phase3-2"),
        ];
        let total: f64 = p.iter().sum();
        let frac = |x: f64| if total > 0.0 { x / total } else { 0.0 };
        println!(
            "{:<16} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            spec.name,
            100.0 * frac(p[0]),
            100.0 * frac(p[1]),
            100.0 * frac(p[2]),
            100.0 * frac(p[3]),
            100.0 * frac(p[4]),
        );
        rows.push(BreakdownRow {
            dataset: spec.name.into(),
            phase1_1: frac(p[0]),
            phase1_2: frac(p[1]),
            phase2: frac(p[2]),
            phase3_1: frac(p[3]),
            phase3_2: frac(p[4]),
        });
    }
    write_csv("fig12_breakdown", &rows);
    println!("\nPaper: Phase II takes the largest share (31–68%), growing with data size;");
    println!("Phases I and III stay light (I: 20–35%, III: 4–35%).");
}
