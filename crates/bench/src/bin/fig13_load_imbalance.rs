//! Figure 13: load imbalance of local clustering (slowest split ÷
//! fastest split) across the ε ladder for RP-DBSCAN and the region-split
//! family.
//!
//! The paper's headline: RP-DBSCAN stays near 1 regardless of ε (1.44 on
//! heavily-skewed GeoLife) while region-split algorithms reach 2.9–623×.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig13_load_imbalance
//! ```

use rpdbscan_bench::*;
use rpdbscan_engine::{ChunkedSteal, Fifo, Lpt, Scheduler};

struct SchedRow {
    dataset: String,
    stage: String,
    scheduler: String,
    makespan: f64,
}

rpdbscan_json::impl_to_json!(SchedRow {
    dataset,
    stage,
    scheduler,
    makespan
});

fn main() {
    let mut rows: Vec<RunRow> = Vec::new();
    let mut sched_rows: Vec<SchedRow> = Vec::new();
    for spec in datasets() {
        let data = spec.generate();
        println!("\n=== {} ===", spec.name);
        println!("{:<14} {:>9} {:>16}", "algorithm", "eps", "load imbalance");
        for eps in spec.eps_ladder() {
            let (row, _, report) = run_rp(&data, spec.name, eps, spec.min_pts, WORKERS);
            // Same measured durations, rescheduled under each policy: how
            // much of the imbalance is placement rather than task skew.
            if eps == spec.eps10 {
                let schedulers: [&dyn Scheduler; 3] = [&Fifo, &Lpt, &ChunkedSteal::default()];
                for s in report
                    .stages
                    .iter()
                    .filter(|s| s.name.starts_with("phase2"))
                {
                    for sched in schedulers {
                        let plan = sched.schedule(&s.task_durations, s.workers);
                        println!(
                            "  {:<28} {:<8} makespan {:.6}s (lower bound {:.6}s)",
                            s.name,
                            sched.name(),
                            plan.makespan,
                            s.makespan_lower_bound()
                        );
                        sched_rows.push(SchedRow {
                            dataset: spec.name.into(),
                            stage: s.name.clone(),
                            scheduler: sched.name().into(),
                            makespan: plan.makespan,
                        });
                    }
                }
            }
            println!("{:<14} {:>9.3} {:>16.2}", row.algo, eps, row.load_imbalance);
            rows.push(row);
            for (algo, params) in region_baselines(eps, spec.min_pts, WORKERS)
                .into_iter()
                .filter(|(a, _)| *a != "SPARK-DBSCAN")
            {
                let (row, _) = run_region(&data, spec.name, algo, params, WORKERS);
                println!("{:<14} {:>9.3} {:>16.2}", row.algo, eps, row.load_imbalance);
                rows.push(row);
            }
        }
    }
    write_csv("fig13_load_imbalance", &rows);
    write_csv("fig13_schedulers", &sched_rows);
    for spec in datasets() {
        let series = rows_to_series(&rows, spec.name, |r| r.load_imbalance);
        save_line_chart(
            &format!("fig13_{}", spec.name.to_lowercase().replace('-', "_")),
            &format!("Fig 13: load imbalance — {}", spec.name),
            "eps",
            "slowest/fastest split",
            false,
            &series,
        );
    }

    println!("\nWorst-case imbalance per algorithm (over all cells):");
    for algo in ["RP-DBSCAN", "ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN"] {
        let worst = rows
            .iter()
            .filter(|r| r.algo == algo)
            .map(|r| r.load_imbalance)
            .fold(1.0f64, f64::max);
        println!("  {algo:<12} {worst:8.2}x");
    }
    println!("Paper: RP-DBSCAN ~1.44 worst-case; region split up to 623x on skewed data.");
}
