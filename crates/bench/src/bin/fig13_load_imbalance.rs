//! Figure 13: load imbalance of local clustering (slowest split ÷
//! fastest split) across the ε ladder for RP-DBSCAN and the region-split
//! family.
//!
//! The paper's headline: RP-DBSCAN stays near 1 regardless of ε (1.44 on
//! heavily-skewed GeoLife) while region-split algorithms reach 2.9–623×.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig13_load_imbalance
//! ```

use rpdbscan_bench::*;

fn main() {
    let mut rows: Vec<RunRow> = Vec::new();
    for spec in datasets() {
        let data = spec.generate();
        println!("\n=== {} ===", spec.name);
        println!("{:<14} {:>9} {:>16}", "algorithm", "eps", "load imbalance");
        for eps in spec.eps_ladder() {
            let (row, _, _) = run_rp(&data, spec.name, eps, spec.min_pts, WORKERS);
            println!("{:<14} {:>9.3} {:>16.2}", row.algo, eps, row.load_imbalance);
            rows.push(row);
            for (algo, params) in region_baselines(eps, spec.min_pts, WORKERS)
                .into_iter()
                .filter(|(a, _)| *a != "SPARK-DBSCAN")
            {
                let (row, _) = run_region(&data, spec.name, algo, params, WORKERS);
                println!("{:<14} {:>9.3} {:>16.2}", row.algo, eps, row.load_imbalance);
                rows.push(row);
            }
        }
    }
    write_csv("fig13_load_imbalance", &rows);
    for spec in datasets() {
        let series = rows_to_series(&rows, spec.name, |r| r.load_imbalance);
        save_line_chart(
            &format!("fig13_{}", spec.name.to_lowercase().replace('-', "_")),
            &format!("Fig 13: load imbalance — {}", spec.name),
            "eps",
            "slowest/fastest split",
            false,
            &series,
        );
    }

    println!("\nWorst-case imbalance per algorithm (over all cells):");
    for algo in ["RP-DBSCAN", "ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN"] {
        let worst = rows
            .iter()
            .filter(|r| r.algo == algo)
            .map(|r| r.load_imbalance)
            .fold(1.0f64, f64::max);
        println!("  {algo:<12} {worst:8.2}x");
    }
    println!("Paper: RP-DBSCAN ~1.44 worst-case; region split up to 623x on skewed data.");
}
