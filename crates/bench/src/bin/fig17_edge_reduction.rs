//! Figure 17 / Table 7: number of cell-graph edges remaining after each
//! tournament round of progressive graph merging (§7.6.2).
//!
//! Round 0 is the pre-merge total over all cell subgraphs; each round
//! both determines edge types and removes redundant full edges, so the
//! count falls steeply — the property that makes the final single-machine
//! merge feasible.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig17_edge_reduction
//! ```

use rpdbscan_bench::*;

struct EdgeRow {
    dataset: String,
    eps: f64,
    round: usize,
    edges: usize,
}

rpdbscan_json::impl_to_json!(EdgeRow {
    dataset,
    eps,
    round,
    edges
});

fn main() {
    let mut rows = Vec::new();
    for spec in datasets() {
        let data = spec.generate();
        println!("\n=== {} ===", spec.name);
        for eps in spec.eps_ladder() {
            let (_, out, _) = run_rp(&data, spec.name, eps, spec.min_pts, WORKERS);
            print!("eps={eps:<10.3}");
            for (round, &edges) in out.stats.edges_per_round.iter().enumerate() {
                print!(" R{round}={edges}");
                rows.push(EdgeRow {
                    dataset: spec.name.into(),
                    eps,
                    round,
                    edges,
                });
            }
            let first = out.stats.edges_per_round[0].max(1);
            let last = *out.stats.edges_per_round.last().expect("rounds") as f64;
            println!("  (reduction {:.1}x)", first as f64 / last.max(1.0));
        }
    }
    write_csv("fig17_table7_edges", &rows);
    // Figure 17's visual: edges vs round for the TeraClick-like set at the
    // two lowest ladder values (the paper plots eps = 1500 and 3000).
    {
        let spec = &datasets()[3];
        let series: Vec<(String, Vec<(f64, f64)>)> = spec.eps_ladder()[..2]
            .iter()
            .map(|&eps| {
                let pts = rows
                    .iter()
                    .filter(|r| r.dataset == spec.name && (r.eps - eps).abs() < 1e-9)
                    .map(|r| (r.round as f64, r.edges as f64))
                    .collect();
                (format!("eps={eps}"), pts)
            })
            .collect();
        save_line_chart(
            "fig17_edge_reduction",
            "Fig 17: edges remaining per merge round (TeraClick-like)",
            "round",
            "edges (log)",
            true,
            &series,
        );
    }
    println!("\nPaper (TeraClickLog): 440M edges at round 0 -> 94.6M after round 1 ->");
    println!("2.53M after round 5; every data set shows the same monotone collapse.");
}
