//! Calibration helper: verifies each data set's ε₁₀ (the radius that
//! yields on the order of ten clusters, §7.1.4) and prints the cluster
//! counts across the ladder. Not one of the paper's figures — a tool for
//! keeping the registry in `rpdbscan_bench::datasets()` honest.

use rpdbscan_bench::{datasets, run_rp, WORKERS};

fn main() {
    for spec in datasets() {
        let data = spec.generate();
        print!("{:<16} n={:<7}", spec.name, data.len());
        for eps in spec.eps_ladder() {
            let (row, _, _) = run_rp(&data, spec.name, eps, spec.min_pts, WORKERS);
            print!(
                "  eps={eps:<8.3} clusters={:<5} noise={:<6}",
                row.clusters, row.noise
            );
        }
        println!();
    }
}
