//! Serving-layer throughput, latency percentiles, hot-swap safety, and
//! delta-publish lag.
//!
//! Four measurements over a Cosmo-like workload:
//!
//! 1. `label_of` throughput + p50/p95/p99 per-task latency at shard
//!    counts {1, 4, num_cpus};
//! 2. `classify` the same way (every query resolves through the
//!    Phase III border rules and the plan LRU);
//! 3. a mixed read + epoch-swap run: one publisher task hot-swaps a
//!    *patched chain* of streaming epoch indices (epoch 1 is a full
//!    build, every later epoch a copy-on-write
//!    `ServingIndex::patch_from_stream`) through the shared
//!    [`IndexSlot`] while reader tasks classify concurrently, counting
//!    torn-generation observations (must be zero, now including the
//!    per-shard build stamps via `verify_shards`) and generation
//!    regressions (must be zero);
//! 4. publish lag vs batch fraction: a sliding-window stream pushes
//!    micro-batches of 1% (and 5%) of the window, and each epoch is
//!    published twice — once as a full `from_stream` rebuild, once as a
//!    delta patch — timing both, asserting the patched generation reads
//!    bit-identically, and asserting the patch is never slower (and at
//!    the 1% fraction, outside smoke, at least 5x faster).
//!
//! Results land in `BENCH_serve.json` (plus the usual CSV under
//! `target/experiments/`).
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin serve_throughput
//! cargo run --release -p rpdbscan-bench --bin serve_throughput -- --smoke
//! ```
//!
//! `--smoke` shrinks the workload for CI: same code paths, same JSON
//! shape, meaningless timings.

use rpdbscan_bench::{scale, write_csv, MIN_PTS, RHO};
use rpdbscan_core::{RpDbscan, RpDbscanParams};
use rpdbscan_data::synth::cosmo_like;
use rpdbscan_data::SynthConfig;
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_json::{ToJson, Value};
use rpdbscan_serve::{IndexSlot, Request, Server, ServerConfig, ServingIndex};
use rpdbscan_stream::{SlidingWindow, StreamingRpDbscan};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct ServeRow {
    kind: String,
    shards: usize,
    queries: usize,
    seconds: f64,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    /// Classify plan-LRU hit rate, `hits / (hits + misses)`. Warm
    /// publish makes this 1.0; `label_of` never touches plans (0.0).
    plan_hit_rate: f64,
    /// Plans pre-built at publish time (0 under `classify_cold`).
    plans_warmed: u64,
}

rpdbscan_json::impl_to_json!(ServeRow {
    kind,
    shards,
    queries,
    seconds,
    qps,
    p50_us,
    p95_us,
    p99_us,
    plan_hit_rate,
    plans_warmed
});

struct LagRow {
    fraction: f64,
    epoch: u64,
    batch: usize,
    expired: usize,
    full_secs: f64,
    patch_secs: f64,
    speedup: f64,
    rebuilt_cells: usize,
    patched_shards: usize,
    shared_shards: usize,
    plans_carried: u64,
}

rpdbscan_json::impl_to_json!(LagRow {
    fraction,
    epoch,
    batch,
    expired,
    full_secs,
    patch_secs,
    speedup,
    rebuilt_cells,
    patched_shards,
    shared_shards,
    plans_carried
});

fn to_us(v: Option<f64>) -> f64 {
    v.unwrap_or(0.0) * 1e6
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke {
        8_000
    } else {
        (50_000.0 * scale()) as usize
    };
    let eps = 0.8;
    let params = RpDbscanParams::new(eps, MIN_PTS).with_rho(RHO);
    let data = cosmo_like(SynthConfig::new(n).with_seed(42));
    let workers = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    let batch = if smoke { 256 } else { 512 };
    println!(
        "Serving throughput on Cosmo-like (n={n}), eps={eps}, minPts={MIN_PTS}, rho={RHO}, \
         {workers} workers{}",
        if smoke { " [smoke]" } else { "" }
    );

    let out = RpDbscan::new(params)
        .expect("valid params")
        .run_local(&data)
        .expect("batch run succeeds");
    println!("clustered: {} clusters", out.clustering.num_clusters());

    // ---- 1+2: read throughput across shard counts --------------------
    let mut rows = Vec::new();
    let mut shard_counts = vec![1usize, 4];
    if !shard_counts.contains(&workers) {
        shard_counts.push(workers);
    }
    println!(
        "{:>13} {:>7} {:>9} {:>11} {:>9} {:>9} {:>9}",
        "kind", "shards", "queries", "qps", "p50(us)", "p95(us)", "p99(us)"
    );
    for &shards in &shard_counts {
        let index = Arc::new(
            ServingIndex::from_batch(&data, &out, &params, shards, 1).expect("index build"),
        );
        // Three runs per shard count: label_of and classify against the
        // default warm-publish server, plus a classify_cold comparison
        // against a server that skips plan warming (build-on-miss).
        for kind in ["label_of", "classify", "classify_cold"] {
            let server = Server::new(
                Engine::with_cost_model(workers, CostModel::free()),
                Arc::clone(&index),
                ServerConfig {
                    queue_capacity: batch,
                    // Room for every occupied cell plus halo plans, so
                    // warming is never budget-capped mid-index.
                    cache_capacity: index.num_cells() + 4096,
                    warm_on_publish: kind != "classify_cold",
                },
            );
            // Min-of-repeats: qps is the fastest full sweep, so a noisy
            // neighbour on the box can't masquerade as a regression. The
            // cold row stays single-pass — a second sweep would measure
            // an already-warmed cache, not cold-start behaviour.
            let repeats = if smoke || kind == "classify_cold" {
                1
            } else {
                3
            };
            let mut seconds = f64::INFINITY;
            for _ in 0..repeats {
                let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock qps is printed for the user, not fed into clustering results
                let mut served = 0usize;
                for lo in (0..n).step_by(batch) {
                    let hi = (lo + batch).min(n);
                    for i in lo..hi {
                        let req = if kind == "label_of" {
                            Request::LabelOf(i as u32)
                        } else {
                            Request::Classify(data.point_at(i).to_vec())
                        };
                        server.submit(req).expect("queue sized to the batch");
                    }
                    served += server.drain().expect("drain succeeds").len();
                }
                seconds = seconds.min(t0.elapsed().as_secs_f64());
                assert_eq!(served, n, "every query answered");
            }
            let stats = server.stats();
            let hist = if kind == "label_of" {
                &stats.label_of
            } else {
                &stats.classify
            };
            let probes = stats.cache_hits + stats.cache_misses;
            let row = ServeRow {
                kind: kind.to_string(),
                shards,
                queries: n,
                seconds,
                qps: n as f64 / seconds.max(1e-9),
                p50_us: to_us(hist.p50()),
                p95_us: to_us(hist.p95()),
                p99_us: to_us(hist.p99()),
                plan_hit_rate: if probes == 0 {
                    0.0
                } else {
                    stats.cache_hits as f64 / probes as f64
                },
                plans_warmed: stats.plans_warmed,
            };
            if kind == "classify" {
                assert_eq!(
                    stats.cache_misses, 0,
                    "warm publish must leave no occupied cell cold"
                );
            }
            println!(
                "{:>13} {:>7} {:>9} {:>11.0} {:>9.1} {:>9.1} {:>9.1}  hit={:.3} warmed={}",
                row.kind,
                row.shards,
                row.queries,
                row.qps,
                row.p50_us,
                row.p95_us,
                row.p99_us,
                row.plan_hit_rate,
                row.plans_warmed
            );
            rows.push(row);
        }
    }

    // ---- 3: mixed reads + epoch hot-swap -----------------------------
    // Build one serving index per streaming epoch — the first a full
    // build, every later one a copy-on-write patch of its predecessor,
    // exactly like the streaming publisher runs in production — then
    // replay the publications against concurrent readers.
    let num_epochs = 6usize;
    let swap_shards = 4usize;
    let mut stream = StreamingRpDbscan::new(data.dim(), params).expect("valid stream params");
    let mut epochs: Vec<Arc<ServingIndex>> = Vec::with_capacity(num_epochs);
    let mut epoch_build_secs: Vec<f64> = Vec::with_capacity(num_epochs);
    for chunk in 0..num_epochs {
        let lo = chunk * n / num_epochs;
        let hi = (chunk + 1) * n / num_epochs;
        let mut flat = Vec::with_capacity((hi - lo) * data.dim());
        for i in lo..hi {
            flat.extend_from_slice(data.point_at(i));
        }
        stream.insert_batch(&flat).expect("insert succeeds");
        let t0 = Instant::now(); // lint:allow(determinism-time): publish wall time is reported, not fed into clustering results
        let idx = match epochs.last() {
            None => Arc::new(ServingIndex::from_stream(&stream, swap_shards)),
            Some(prev) => {
                Arc::new(ServingIndex::patch_from_stream(prev, &stream).expect("patch succeeds"))
            }
        };
        epoch_build_secs.push(t0.elapsed().as_secs_f64());
        epochs.push(idx);
    }
    let slot = Arc::new(IndexSlot::new(Arc::clone(&epochs[0])));
    // Same-generation publications are skipped, not replayed.
    assert!(
        !slot.publish_if_newer(Arc::clone(&epochs[0])),
        "same-or-older generations never displace the current index"
    );
    let queries: Vec<Vec<f64>> = (0..256.min(n))
        .map(|i| data.point_at(i * (n / 256.min(n)).max(1) % n).to_vec())
        .collect();
    let done = AtomicBool::new(false);
    let readers = workers.max(2);
    let min_reads = 200u64;
    let max_reads: u64 = if smoke { 2_000 } else { 50_000 };

    let engine = Engine::with_cost_model(readers + 1, CostModel::free());
    let tasks: Vec<usize> = (0..=readers).collect();
    let result = engine
        .run_stage("serve:swap-mix", tasks, |_ctx, task| {
            if task == 0 {
                // Publisher: walk the epoch sequence, interleaving a read
                // between swaps so the schedule mixes with the readers.
                let mut swaps = 0u64;
                for e in &epochs[1..] {
                    if slot.publish_if_newer(Arc::clone(e)) {
                        swaps += 1;
                    }
                    let idx = slot.load();
                    for q in queries.iter().take(8) {
                        std::hint::black_box(
                            idx.classify(q)
                                .map_err(|e| rpdbscan_engine::TaskError::new(e.to_string()))?,
                        );
                    }
                }
                done.store(true, Ordering::Release);
                Ok((swaps, 0u64, 0u64, 0u64))
            } else {
                // Reader: load → verify generation *and* per-shard build
                // stamps (patched generations Arc-share shards with their
                // base, so a torn patch would show up here) → classify,
                // until the publisher finishes (with a floor so serialized
                // schedules still measure, and a cap so nothing spins
                // forever).
                let mut reads = 0u64;
                let mut torn = 0u64;
                let mut regressions = 0u64;
                let mut last_gen = 0u64;
                while reads < min_reads || (!done.load(Ordering::Acquire) && reads < max_reads) {
                    let idx = slot.load();
                    match idx.verify_shards() {
                        Some(g) => {
                            if g < last_gen {
                                regressions += 1;
                            }
                            last_gen = g;
                        }
                        None => torn += 1,
                    }
                    let q = &queries[reads as usize % queries.len()];
                    std::hint::black_box(
                        idx.classify(q)
                            .map_err(|e| rpdbscan_engine::TaskError::new(e.to_string()))?,
                    );
                    reads += 1;
                }
                Ok((0u64, reads, torn, regressions))
            }
        })
        .expect("swap-mix stage succeeds");
    let swaps: u64 = result.outputs.iter().map(|r| r.0).sum();
    let reads: u64 = result.outputs.iter().map(|r| r.1).sum();
    let torn: u64 = result.outputs.iter().map(|r| r.2).sum();
    let regressions: u64 = result.outputs.iter().map(|r| r.3).sum();
    println!(
        "hot-swap mix: {readers} readers, {swaps} swaps over {} epochs, {reads} reads, \
         {torn} torn generations, {regressions} generation regressions",
        num_epochs
    );
    assert_eq!(torn, 0, "a reader observed a torn index generation");
    assert_eq!(
        regressions, 0,
        "a reader observed the generation move backwards"
    );
    assert_eq!(
        swaps,
        num_epochs as u64 - 1,
        "every newer epoch published once"
    );
    assert_eq!(slot.generation(), num_epochs as u64);

    // ---- 4: delta publish lag vs batch fraction ----------------------
    // A sliding window holding the whole workload: each epoch pushes a
    // micro-batch of `fraction * n` fresh points (expiring as many of
    // the oldest), and the new epoch is published both ways — a full
    // `from_stream` rebuild and a copy-on-write patch — under a timer.
    // The patched index must read bit-identically and must never be
    // slower; at the 1% fraction outside smoke it must be >=5x faster.
    let lag_shards = 4usize;
    let lag_epochs = 6usize;
    let fractions: &[f64] = if smoke { &[0.01] } else { &[0.01, 0.05] };
    let max_batch = fractions
        .iter()
        .map(|f| ((n as f64 * f).ceil() as usize).max(1))
        .max()
        .unwrap_or(1);
    let feed = cosmo_like(SynthConfig::new(max_batch * lag_epochs).with_seed(43));
    let mut lag_rows: Vec<LagRow> = Vec::new();
    println!(
        "{:>9} {:>6} {:>7} {:>8} {:>11} {:>11} {:>8} {:>9} {:>8}",
        "fraction",
        "epoch",
        "batch",
        "expired",
        "full(s)",
        "patch(s)",
        "speedup",
        "rebuilt",
        "carried"
    );
    for &fraction in fractions {
        let b = ((n as f64 * fraction).ceil() as usize).max(1);
        let mut seed_stream =
            StreamingRpDbscan::new(data.dim(), params).expect("valid stream params");
        let mut flat = Vec::with_capacity(n * data.dim());
        for i in 0..n {
            flat.extend_from_slice(data.point_at(i));
        }
        seed_stream.insert_batch(&flat).expect("insert succeeds");
        let mut w = SlidingWindow::new(seed_stream, n).expect("nonzero window");
        let mut prev = Arc::new(ServingIndex::from_stream(w.stream(), lag_shards));
        let server = Server::new(
            Engine::with_cost_model(workers, CostModel::free()),
            Arc::clone(&prev),
            ServerConfig {
                queue_capacity: n.max(256),
                cache_capacity: n + 8192,
                warm_on_publish: true,
            },
        );
        for e in 0..lag_epochs {
            let mut push = Vec::with_capacity(b * data.dim());
            for i in 0..b {
                push.extend_from_slice(feed.point_at(e * max_batch + i));
            }
            w.push_batch(&push).expect("push succeeds");
            // Min-of-repeats on both sides so a noisy neighbour can't
            // tip the comparison either way. The patch side is cheap
            // enough that stolen CPU ticks dominate any single run, so
            // it gets more repeats than the full rebuild.
            let mut full_secs = f64::INFINITY;
            let mut full = None;
            for _ in 0..3 {
                let t0 = Instant::now(); // lint:allow(determinism-time): publish wall time is the measured quantity
                let idx = ServingIndex::from_stream(w.stream(), lag_shards);
                full_secs = full_secs.min(t0.elapsed().as_secs_f64());
                full = Some(idx);
            }
            let full = full.expect("at least one rebuild ran");
            let mut patch_secs = f64::INFINITY;
            let mut patched = None;
            for _ in 0..5 {
                let t0 = Instant::now(); // lint:allow(determinism-time): publish wall time is the measured quantity
                let idx =
                    ServingIndex::patch_from_stream(&prev, w.stream()).expect("patch succeeds");
                patch_secs = patch_secs.min(t0.elapsed().as_secs_f64());
                patched = Some(idx);
            }
            let patched = Arc::new(patched.expect("at least one patch ran"));

            // Bit-for-bit equivalence: every live id's stored label, and
            // classification of a probe sample, must match the full
            // rebuild exactly.
            assert_eq!(patched.generation(), full.generation());
            assert_eq!(patched.num_points(), full.num_points());
            assert_eq!(
                patched.verify_shards(),
                Some(patched.generation()),
                "patched generation failed the torn-read detector"
            );
            for id in w.stream().snapshot().ids {
                assert_eq!(
                    patched.label_of(id.0),
                    full.label_of(id.0),
                    "patched label diverged from full rebuild for id {}",
                    id.0
                );
            }
            let live = w.stream().dataset();
            let probe_step = (live.len() / 128).max(1);
            for i in (0..live.len()).step_by(probe_step) {
                let q = live.point_at(i);
                assert_eq!(
                    patched.classify(q).expect("classify succeeds"),
                    full.classify(q).expect("classify succeeds"),
                    "patched classify diverged from full rebuild"
                );
            }

            // Publish through the server: untouched cells' plans are
            // carried, so classifying them afterwards must cost zero
            // cold plan builds.
            let summary = patched
                .patch_summary()
                .expect("patched index has a summary")
                .clone();
            let carried_before = server.stats().plans_carried;
            assert!(server.publish_if_newer(Arc::clone(&patched)));
            let stats = server.stats();
            let plans_carried = stats.plans_carried - carried_before;
            let misses_before = stats.cache_misses;
            let reqs: Vec<Request> = (0..live.len())
                .step_by(probe_step)
                .map(|i| Request::Classify(live.point_at(i).to_vec()))
                .collect();
            let served = server.execute(reqs).expect("probe batch succeeds");
            assert_eq!(served.len(), live.len().div_ceil(probe_step));
            assert_eq!(
                server.stats().cache_misses,
                misses_before,
                "a delta publish left an occupied cell's plan cold"
            );

            let speedup = full_secs / patch_secs.max(1e-9);
            let row = LagRow {
                fraction,
                epoch: patched.generation(),
                batch: b,
                expired: w.last_expired(),
                full_secs,
                patch_secs,
                speedup,
                rebuilt_cells: summary.rebuilt_cells(),
                patched_shards: summary.patched_shards(),
                shared_shards: summary.shared_shards(),
                plans_carried,
            };
            println!(
                "{:>9.3} {:>6} {:>7} {:>8} {:>11.6} {:>11.6} {:>8.1} {:>9} {:>8}",
                row.fraction,
                row.epoch,
                row.batch,
                row.expired,
                row.full_secs,
                row.patch_secs,
                row.speedup,
                row.rebuilt_cells,
                row.plans_carried
            );
            assert!(
                patch_secs <= full_secs,
                "delta publish ({patch_secs:.6}s) slower than full rebuild ({full_secs:.6}s) \
                 at batch fraction {fraction}"
            );
            if !smoke && fraction <= 0.011 {
                assert!(
                    speedup >= 5.0,
                    "delta publish only {speedup:.1}x faster than full rebuild at batch \
                     fraction {fraction}; the acceptance floor is 5x"
                );
            }
            lag_rows.push(row);
            prev = patched;
        }
    }

    write_csv("serve_throughput", &rows);
    let mut doc = Value::object();
    doc.insert("workload", "Cosmo-like");
    doc.insert("total_points", n);
    doc.insert("eps", eps);
    doc.insert("min_pts", MIN_PTS);
    doc.insert("rho", RHO);
    doc.insert("workers", workers);
    doc.insert("smoke", Value::Bool(smoke));
    doc.insert(
        "rows",
        Value::Array(rows.iter().map(|r| r.to_json()).collect()),
    );
    let mut swap = Value::object();
    swap.insert("readers", readers);
    swap.insert("epochs", num_epochs);
    swap.insert("shards", swap_shards);
    swap.insert("swaps", swaps);
    swap.insert("reads", reads);
    swap.insert("torn_generations", torn);
    swap.insert("generation_regressions", regressions);
    swap.insert("epoch_build_secs", epoch_build_secs);
    doc.insert("hot_swap", swap);
    let mut lag = Value::object();
    lag.insert("epochs", lag_epochs);
    lag.insert("shards", lag_shards);
    lag.insert("window", n);
    lag.insert(
        "rows",
        Value::Array(lag_rows.iter().map(|r| r.to_json()).collect()),
    );
    doc.insert("publish_lag", lag);
    let path = "BENCH_serve.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create json"));
    writeln!(f, "{doc}").expect("write json");
    println!("wrote {path}");
}
