//! Ablation: partitioning strategies (the design choice at the heart of
//! the paper).
//!
//! Compares, on one skewed workload:
//!
//! * **pseudo random partitioning** (RP-DBSCAN) — random *cells* plus the
//!   broadcast dictionary;
//! * **naive random split** (§2.2.1's SDBC/S-DBSCAN family) — random
//!   *points*, no shared summary: fast and balanced but *inaccurate*;
//! * **region split** (even/reduced-boundary/cost-based) — accurate but
//!   imbalanced and duplicating.
//!
//! The three-way trade-off is the paper's Table-2 landscape in one run:
//! only pseudo random partitioning scores 1.0 accuracy AND ~1 balance AND
//! 1.0× duplication.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin ablation_partitioning
//! ```

use rpdbscan_baselines::{exact_dbscan, NaiveParams, NaiveRandomDbscan};
use rpdbscan_bench::*;
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_metrics::{rand_index, NoisePolicy};

struct AblationRow {
    strategy: String,
    rand_index: f64,
    load_imbalance: f64,
    duplication: f64,
    elapsed: f64,
    clusters: usize,
}

rpdbscan_json::impl_to_json!(AblationRow {
    strategy,
    rand_index,
    load_imbalance,
    duplication,
    elapsed,
    clusters
});

fn main() {
    let n = (40_000.0 * scale()) as usize;
    let data = synth::geolife_like(SynthConfig::new(n));
    let eps = 0.3;
    let min_pts = 10;
    println!("GeoLife-like skewed data, n={n}, eps={eps}, minPts={min_pts}\n");
    let exact = exact_dbscan(&data, eps, min_pts);
    let ri = |c: &rpdbscan_metrics::Clustering| {
        rand_index(&exact.clustering, c, NoisePolicy::SingleCluster)
    };
    let mut rows = Vec::new();

    println!(
        "{:<26} {:>8} {:>10} {:>12} {:>11} {:>9}",
        "strategy", "RI", "imbalance", "duplication", "elapsed(s)", "clusters"
    );
    // Pseudo random (RP-DBSCAN).
    {
        let (row, out, _) = run_rp(&data, "geo", eps, min_pts, WORKERS);
        let r = AblationRow {
            strategy: "pseudo-random cells (RP)".into(),
            rand_index: ri(&out.clustering),
            load_imbalance: row.load_imbalance,
            duplication: row.points_processed as f64 / n as f64,
            elapsed: row.elapsed,
            clusters: row.clusters,
        };
        print_row(&r);
        rows.push(r);
    }
    // Naive random points (no dictionary).
    {
        let engine = Engine::with_cost_model(WORKERS, CostModel::default());
        let out = NaiveRandomDbscan::new(NaiveParams::new(eps, min_pts, WORKERS))
            .run(&data, &engine)
            .expect("run succeeds");
        let report = engine.report();
        let r = AblationRow {
            strategy: "naive random points".into(),
            rand_index: ri(&out.clustering),
            load_imbalance: report.load_imbalance_with_prefix("naive:local"),
            duplication: out.points_processed as f64 / n as f64,
            elapsed: report.total_elapsed(),
            clusters: out.clustering.num_clusters(),
        };
        print_row(&r);
        rows.push(r);
    }
    // Region split family.
    for (name, params) in region_baselines(eps, min_pts, WORKERS)
        .into_iter()
        .filter(|(a, _)| *a != "SPARK-DBSCAN")
    {
        let (row, _) = run_region(&data, "geo", name, params, WORKERS);
        let engine_clustering = {
            let engine = Engine::with_cost_model(WORKERS, CostModel::free());
            rpdbscan_baselines::RegionDbscan::new(params)
                .run(&data, &engine)
                .expect("run succeeds")
                .clustering
        };
        let r = AblationRow {
            strategy: format!("region split ({name})"),
            rand_index: ri(&engine_clustering),
            load_imbalance: row.load_imbalance,
            duplication: row.points_processed as f64 / n as f64,
            elapsed: row.elapsed,
            clusters: row.clusters,
        };
        print_row(&r);
        rows.push(r);
    }
    write_csv("ablation_partitioning", &rows);
    println!("\nThe paper's claim in one table: only pseudo random partitioning keeps");
    println!("accuracy at 1.0, balance near 1, and duplication at exactly 1.0x.");
}

fn print_row(r: &AblationRow) {
    println!(
        "{:<26} {:>8.4} {:>10.2} {:>12.3} {:>11.3} {:>9}",
        r.strategy, r.rand_index, r.load_imbalance, r.duplication, r.elapsed, r.clusters
    );
}
