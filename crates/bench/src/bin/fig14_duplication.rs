//! Figure 14: total number of points processed across all splits — the
//! data-duplication cost of overlapping sub-regions.
//!
//! RP-DBSCAN's pseudo random partitioning assigns every cell to exactly
//! one partition, so its count equals N exactly at every ε; the region
//! family duplicates halo points, growing with ε (except on heavily
//! skewed data, §7.3.2's observed reversal).
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig14_duplication
//! ```

use rpdbscan_bench::*;

fn main() {
    let mut rows: Vec<RunRow> = Vec::new();
    for spec in datasets() {
        let data = spec.generate();
        let n = data.len() as u64;
        println!("\n=== {} (N = {n}) ===", spec.name);
        println!(
            "{:<14} {:>9} {:>14} {:>14}",
            "algorithm", "eps", "processed", "ratio to N"
        );
        for eps in spec.eps_ladder() {
            let (row, _, _) = run_rp(&data, spec.name, eps, spec.min_pts, WORKERS);
            assert_eq!(
                row.points_processed, n,
                "RP-DBSCAN must process each point exactly once"
            );
            println!(
                "{:<14} {:>9.3} {:>14} {:>14.3}",
                row.algo,
                eps,
                row.points_processed,
                row.points_processed as f64 / n as f64
            );
            rows.push(row);
            for (algo, params) in region_baselines(eps, spec.min_pts, WORKERS)
                .into_iter()
                .filter(|(a, _)| *a != "SPARK-DBSCAN")
            {
                let (row, _) = run_region(&data, spec.name, algo, params, WORKERS);
                println!(
                    "{:<14} {:>9.3} {:>14} {:>14.3}",
                    row.algo,
                    eps,
                    row.points_processed,
                    row.points_processed as f64 / n as f64
                );
                rows.push(row);
            }
        }
    }
    write_csv("fig14_duplication", &rows);
    for spec in datasets() {
        let series = rows_to_series(&rows, spec.name, |r| r.points_processed as f64);
        save_line_chart(
            &format!("fig14_{}", spec.name.to_lowercase().replace('-', "_")),
            &format!("Fig 14: points processed — {}", spec.name),
            "eps",
            "points",
            false,
            &series,
        );
    }
    println!("\nPaper: ESP/CBP processed up to 7.34x/6.33x more points than RP-DBSCAN;");
    println!("RBP duplicates least among the three; RP-DBSCAN is always exactly N.");
}
