//! Appendix B.3 (Figures 20–21): scalability to data size.
//!
//! 5-d Gaussian mixture with α = 8 (Appendix B.1), sizes doubling over a
//! 16× span (the paper uses 5–80 GB). Reports total elapsed time (Figure
//! 20, expected near-linear) and the phase breakdown (Figure 21, Phase II
//! share growing with size).
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig20_datasize
//! ```

use rpdbscan_bench::*;
use rpdbscan_data::{synth, SynthConfig};

struct SizeRow {
    n: usize,
    elapsed: f64,
    phase1: f64,
    phase2: f64,
    phase3: f64,
}

rpdbscan_json::impl_to_json!(SizeRow {
    n,
    elapsed,
    phase1,
    phase2,
    phase3
});

fn main() {
    let eps = 5.0;
    let min_pts = 40;
    let base = (20_000.0 * scale()) as usize;
    let mut rows = Vec::new();
    println!(
        "{:>9} {:>12} {:>9} {:>9} {:>9}",
        "n", "elapsed(s)", "I %", "II %", "III %"
    );
    let mut first: Option<(usize, f64)> = None;
    for mult in [1usize, 2, 4, 8, 16] {
        let n = base * mult;
        let data = synth::gaussian_mixture(SynthConfig::new(n).with_seed(11), 5, 8.0);
        let (row, _, report) = run_rp(&data, "mixture-5d", eps, min_pts, WORKERS);
        let p1 = report.elapsed_with_prefix("phase1");
        let p2 = report.elapsed_with_prefix("phase2");
        let p3 = report.elapsed_with_prefix("phase3");
        let total = (p1 + p2 + p3).max(1e-12);
        println!(
            "{n:>9} {:>12.3} {:>8.1}% {:>8.1}% {:>8.1}%",
            row.elapsed,
            100.0 * p1 / total,
            100.0 * p2 / total,
            100.0 * p3 / total
        );
        first.get_or_insert((n, row.elapsed));
        rows.push(SizeRow {
            n,
            elapsed: row.elapsed,
            phase1: p1 / total,
            phase2: p2 / total,
            phase3: p3 / total,
        });
    }
    write_csv("fig20_21_datasize", &rows);
    let series = vec![(
        "RP-DBSCAN".to_string(),
        rows.iter()
            .map(|r| (r.n as f64, r.elapsed))
            .collect::<Vec<_>>(),
    )];
    save_line_chart(
        "fig20_datasize",
        "Fig 20: elapsed vs data size (5-d mixture, alpha=8)",
        "points",
        "elapsed (s)",
        false,
        &series,
    );
    if let (Some((n0, t0)), Some(last)) = (first, rows.last()) {
        let growth = last.elapsed / t0;
        let size_growth = last.n as f64 / n0 as f64;
        println!(
            "\nElapsed grew {growth:.1}x over a {size_growth:.0}x size increase \
             (paper: 15.2x over 16x — near-linear)."
        );
    }
}
