//! Figure 15: speed-up as the number of cores grows (5 → 10 → 20 → 40 in
//! the paper; the same 8× span here), on the Cosmo-like data set at
//! ε₁₀/4 — §7.4's configuration (Cosmo50, ε = 0.02 = ε₁₀/4).
//!
//! Speed-up is the ratio of the elapsed time with the base worker count
//! to that with more workers. The paper reports 4.40× for RP-DBSCAN and
//! 2.88–3.19× for the region family over the 8× core growth.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin fig15_scalability
//! ```

use rpdbscan_bench::*;

struct ScaleRow {
    algo: String,
    workers: usize,
    elapsed: f64,
    speedup: f64,
}

rpdbscan_json::impl_to_json!(ScaleRow {
    algo,
    workers,
    elapsed,
    speedup
});

fn main() {
    let worker_grid = [5usize, 10, 20, 40];
    let spec = &datasets()[1]; // Cosmo-like
    let eps = spec.eps10 / 4.0;
    // Scalability needs tasks long enough that per-stage constants don't
    // flatten the curve; this experiment runs at 8x the harness base size
    // (the paper's Cosmo50 is 315M points — four orders larger still).
    let data = (spec.gen)((spec.base_n as f64 * 8.0 * scale()) as usize, 42);
    println!(
        "Scalability on {} (n={}), eps={eps} (= eps10/4), minPts={}",
        spec.name,
        data.len(),
        spec.min_pts
    );

    let mut rows = Vec::new();
    let mut base: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    println!(
        "{:<14} {:>8} {:>12} {:>9}",
        "algorithm", "workers", "elapsed(s)", "speedup"
    );
    for &w in &worker_grid {
        // RP-DBSCAN
        let (row, _, _) = run_rp(&data, spec.name, eps, spec.min_pts, w);
        let b = *base.entry(row.algo.clone()).or_insert(row.elapsed);
        let s = b / row.elapsed;
        println!("{:<14} {:>8} {:>12.3} {:>9.2}", row.algo, w, row.elapsed, s);
        rows.push(ScaleRow {
            algo: row.algo,
            workers: w,
            elapsed: row.elapsed,
            speedup: s,
        });
        // Region family
        for (algo, params) in region_baselines(eps, spec.min_pts, w)
            .into_iter()
            .filter(|(a, _)| *a != "SPARK-DBSCAN")
        {
            let (row, _) = run_region(&data, spec.name, algo, params, w);
            let b = *base.entry(row.algo.clone()).or_insert(row.elapsed);
            let s = b / row.elapsed;
            println!("{:<14} {:>8} {:>12.3} {:>9.2}", row.algo, w, row.elapsed, s);
            rows.push(ScaleRow {
                algo: row.algo,
                workers: w,
                elapsed: row.elapsed,
                speedup: s,
            });
        }
    }
    write_csv("fig15_scalability", &rows);
    {
        let mut order: Vec<String> = Vec::new();
        for r in &rows {
            if !order.contains(&r.algo) {
                order.push(r.algo.clone());
            }
        }
        let series: Vec<(String, Vec<(f64, f64)>)> = order
            .into_iter()
            .map(|algo| {
                let pts = rows
                    .iter()
                    .filter(|r| r.algo == algo)
                    .map(|r| (r.workers as f64, r.speedup))
                    .collect();
                (algo, pts)
            })
            .collect();
        save_line_chart(
            "fig15_scalability",
            "Fig 15: speed-up vs workers (Cosmo-like)",
            "workers",
            "speed-up",
            false,
            &series,
        );
    }
    println!("\nPaper: RP-DBSCAN speeds up 4.40x from 5 to 40 cores; region family 2.88–3.19x");
    println!("(the sequential split phase caps the region family's scalability).");
}
