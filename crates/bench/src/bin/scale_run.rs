//! Out-of-core scale run: a 10⁷-point `osm_like` ε-sweep under a capped
//! buffer pool (Figure 14c's sweep shape, run through the column store).
//!
//! The run is the acceptance gate for ROADMAP item 3's first rung:
//!
//! * the pool byte cap is **¼ of the dataset's resident size** (the
//!   pool itself is budgeted a little below the cap so transient pinned
//!   pages — one per worker — can never push the peak over it);
//! * after every ε the peak tracked bytes are **hard-asserted ≤ cap**;
//! * before the sweep, the out-of-core labels are **hard-asserted
//!   bit-identical** to the resident pipeline's at a common size.
//!
//! Per ε the run records simulated elapsed seconds, pool hit rate, peak
//! tracked bytes, and spill volume into `BENCH_scale.json` (plus the
//! usual CSV under `target/experiments/`). Any assertion failure exits
//! nonzero — the CI `scale-smoke` job relies on that.
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin scale_run
//! cargo run --release -p rpdbscan-bench --bin scale_run -- --smoke
//! ```

use rpdbscan_bench::{write_csv, MIN_PTS, RHO, WORKERS};
use rpdbscan_core::{OutOfCoreConfig, RpDbscan, RpDbscanParams};
use rpdbscan_data::{synth, SynthConfig};
use rpdbscan_engine::{CostModel, Engine};
use rpdbscan_geom::Dataset;
use rpdbscan_json::{ToJson, Value};
use rpdbscan_store::{ColumnStore, StoreWriter};
use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

struct ScaleRow {
    eps: f64,
    points: usize,
    clusters: usize,
    noise: usize,
    simulated_sec: f64,
    wall_sec: f64,
    pool_budget_bytes: u64,
    pool_peak_tracked_bytes: u64,
    pool_hit_rate: f64,
    pool_evictions: u64,
    spill_bytes_written: u64,
    spill_bytes_read: u64,
    merge_peak_frontier_bytes: u64,
}

rpdbscan_json::impl_to_json!(ScaleRow {
    eps,
    points,
    clusters,
    noise,
    simulated_sec,
    wall_sec,
    pool_budget_bytes,
    pool_peak_tracked_bytes,
    pool_hit_rate,
    pool_evictions,
    spill_bytes_written,
    spill_bytes_read,
    merge_peak_frontier_bytes
});

/// Ingests `data` into a temp-file column store under `(eps, rho)` and
/// opens it. The file is unlinked right after opening — the descriptor
/// keeps it readable, and nothing is left behind on any exit path.
fn build_store(data: &Dataset, eps: f64, rho: f64, page_rows: u32, tag: &str) -> Arc<ColumnStore> {
    let spec = rpdbscan_grid::GridSpec::new(data.dim(), eps, rho).expect("valid grid");
    let mut w = StoreWriter::new(spec, page_rows).expect("valid page size");
    for (_, p) in data.iter() {
        w.push(p).expect("row matches dim");
    }
    let path =
        std::env::temp_dir().join(format!("rpdbscan-scale-{}-{tag}.store", std::process::id()));
    w.finish(&path).expect("write store");
    let store = ColumnStore::open(&path).expect("reopen just-written store");
    std::fs::remove_file(&path).expect("unlink store");
    Arc::new(store)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, equiv_n, page_rows): (usize, usize, u32) = if smoke {
        (30_000, 10_000, 256)
    } else {
        (10_000_000, 200_000, 4096)
    };
    // Figure 14c sweeps ε on OSM; the same doubling ladder around the
    // Table-3 stand-in's ε=1.2 operating point.
    let eps_ladder: &[f64] = &[0.6, 1.2, 2.4];
    println!(
        "Out-of-core scale run: osm_like n={n}{}",
        if smoke { " [smoke]" } else { "" }
    );

    // ---- Gate 1: bit-identical labels vs the resident pipeline -------
    // A common size both pipelines can hold; labels must agree exactly.
    let equiv_eps = 1.2;
    let small = synth::osm_like(SynthConfig::new(equiv_n).with_seed(42));
    let params = RpDbscanParams::new(equiv_eps, MIN_PTS)
        .with_rho(RHO)
        .with_partitions(WORKERS * 2);
    let engine = Engine::with_cost_model(WORKERS, CostModel::free());
    let runner = RpDbscan::new(params).expect("valid params");
    let resident = runner.run(&small, &engine).expect("resident run");
    let store = build_store(&small, equiv_eps, RHO, page_rows, "equiv");
    let budget = (store.resident_bytes() / 8).max(u64::from(page_rows) * 8 * 4);
    let ooc = runner
        .run_out_of_core(&store, &OutOfCoreConfig::new(budget), &engine)
        .expect("out-of-core run");
    if ooc.clustering != resident.clustering {
        eprintln!("FAIL: out-of-core labels diverge from resident at n={equiv_n}");
        std::process::exit(1);
    }
    println!(
        "equivalence: {} points, {} clusters, out-of-core labels bit-identical to resident",
        equiv_n,
        resident.clustering.num_clusters()
    );
    drop((small, store, resident, ooc));

    // ---- Gate 2: the ε-sweep under the ¼-resident cap ----------------
    let data = synth::osm_like(SynthConfig::new(n).with_seed(42));
    let resident_bytes = (data.len() * data.dim() * 8) as u64;
    let cap = resident_bytes / 4;
    // Budget the pool below the cap: each worker can hold one page
    // pinned past the budget, and that honest overshoot must not be
    // able to cross the cap.
    let pin_slack = (WORKERS as u64 + 1) * u64::from(page_rows) * 8;
    assert!(cap > 2 * pin_slack, "cap too small for the page size");
    let pool_budget = cap - pin_slack;
    println!(
        "resident {} bytes, cap {} bytes (1/4), pool budget {} bytes, page_rows {page_rows}",
        resident_bytes, cap, pool_budget
    );
    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>9} {:>12} {:>12} {:>8}",
        "eps", "clusters", "noise", "sim(s)", "hit%", "peak(B)", "spill(B)", "wall(s)"
    );

    let mut rows = Vec::new();
    let mut violations = 0usize;
    for &eps in eps_ladder {
        let store = build_store(&data, eps, RHO, page_rows, &format!("e{eps}"));
        let params = RpDbscanParams::new(eps, MIN_PTS)
            .with_rho(RHO)
            .with_partitions(WORKERS * 2);
        let engine = Engine::new(WORKERS);
        let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        let out = RpDbscan::new(params)
            .expect("valid params")
            .run_out_of_core(&store, &OutOfCoreConfig::new(pool_budget), &engine)
            .expect("out-of-core run");
        let wall = t0.elapsed().as_secs_f64();
        let s = &out.stats;
        let hit_rate = s.pool_hits as f64 / (s.pool_hits + s.pool_misses).max(1) as f64;
        println!(
            "{eps:>6} {:>9} {:>9} {:>10.3} {:>8.1}% {:>12} {:>12} {:>8.1}",
            s.num_clusters,
            s.noise_points,
            engine.report().total_elapsed(),
            100.0 * hit_rate,
            s.pool_peak_tracked_bytes,
            s.spill_bytes_written,
            wall
        );
        if s.pool_peak_tracked_bytes > cap {
            eprintln!(
                "FAIL: eps={eps}: peak tracked {} bytes exceeds the cap {}",
                s.pool_peak_tracked_bytes, cap
            );
            violations += 1;
        }
        if s.spill_bytes_written == 0 {
            eprintln!("FAIL: eps={eps}: phase II never spilled");
            violations += 1;
        }
        rows.push(ScaleRow {
            eps,
            points: data.len(),
            clusters: s.num_clusters,
            noise: s.noise_points,
            simulated_sec: engine.report().total_elapsed(),
            wall_sec: wall,
            pool_budget_bytes: s.pool_budget_bytes,
            pool_peak_tracked_bytes: s.pool_peak_tracked_bytes,
            pool_hit_rate: hit_rate,
            pool_evictions: s.pool_evictions,
            spill_bytes_written: s.spill_bytes_written,
            spill_bytes_read: s.spill_bytes_read,
            merge_peak_frontier_bytes: s.merge_peak_frontier_bytes,
        });
    }

    write_csv("scale_run", &rows);
    let mut doc = Value::object();
    doc.insert("workload", "osm_like");
    doc.insert("points", n);
    doc.insert("dim", 2usize);
    doc.insert("min_pts", MIN_PTS);
    doc.insert("rho", RHO);
    doc.insert("page_rows", page_rows as usize);
    doc.insert("resident_bytes", resident_bytes);
    doc.insert("cap_bytes", cap);
    doc.insert("pool_budget_bytes", pool_budget);
    doc.insert("equivalence_points", equiv_n);
    doc.insert("equivalence_bit_identical", Value::Bool(true));
    doc.insert("smoke", Value::Bool(smoke));
    doc.insert(
        "rows",
        Value::Array(rows.iter().map(|r| r.to_json()).collect()),
    );
    let path = "BENCH_scale.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create json"));
    writeln!(f, "{doc}").expect("write json");
    println!("wrote {path}");

    if violations > 0 {
        eprintln!("{violations} scale-run gate(s) failed — aborting");
        std::process::exit(1);
    }
}
