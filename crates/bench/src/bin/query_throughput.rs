//! Planned vs unplanned vs *routed* `(ε,ρ)`-region query throughput.
//!
//! The Phase II hot path answers one region query per point. The
//! cell-level planner (`CellQueryPlan`) amortises the kd-tree candidate
//! search and sub-cell classification over all points of a cell, and the
//! `PlannerCostModel` decides per cell whether that amortisation pays.
//! This binary measures all three paths on two workload shapes:
//!
//! * **dense** — points packed ≥ 16 per cell, where one plan serves many
//!   queries (the shape Phase II sees on clustered data);
//! * **sparse** — near-singleton cells (where plan builds amortise
//!   poorly — the planner's historical 0.69× worst case) plus a thin
//!   dense tail of blob cells, the shape real skewed data takes;
//!
//! and three paths per shape:
//!
//! * **unplanned** — the per-point kd oracle;
//! * **planned** — a plan per cell, unconditionally (the old
//!   `use_query_planner = true` ablation);
//! * **routed** — the production path: the cost model routes each cell
//!   to whichever of the two is cheaper for its occupancy.
//!
//! All paths run identical per-point query sequences with densities
//! cross-checked, so a divergence fails loudly — and the routed path is
//! **gated**: the run aborts if routed speedup drops below 1.0× on
//! either shape, which is what makes the bench-smoke CI job fail on a
//! routing regression.
//!
//! Results land in `BENCH_query.json` (plus the usual CSV under
//! `target/experiments/`).
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin query_throughput
//! cargo run --release -p rpdbscan-bench --bin query_throughput -- --smoke
//! ```
//!
//! `--smoke` shrinks the workload for CI: same code path, well-formed
//! JSON, same routed gate, noisier timings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_bench::{scale, write_csv, RHO};
use rpdbscan_core::partition::group_by_cell;
use rpdbscan_grid::{
    CellDictionary, CellQueryPlan, DictionaryIndex, GridSpec, PlannerCostModel, QueryRoute,
    RegionQueryResult,
};
use rpdbscan_json::{ToJson, Value};
use std::io::Write;
use std::time::Instant;

struct QueryRow {
    shape: String,
    path: String,
    points: usize,
    cells: usize,
    points_per_cell: f64,
    seconds: f64,
    qps: f64,
    ns_per_point: f64,
    /// Speedup over the unplanned oracle (1.0 for unplanned itself).
    speedup_vs_unplanned: f64,
    /// Cells the path planned (all for `planned`, cost-model split for
    /// `routed`, none for `unplanned`).
    cells_planned: usize,
    /// Cells the path sent down the per-point kd oracle.
    cells_kd: usize,
}

rpdbscan_json::impl_to_json!(QueryRow {
    shape,
    path,
    points,
    cells,
    points_per_cell,
    seconds,
    qps,
    ns_per_point,
    speedup_vs_unplanned,
    cells_planned,
    cells_kd
});

/// Uniform points over `[0, extent)²` — cell occupancy is set by the
/// extent/ε ratio, which is all that matters to the planner.
fn uniform(n: usize, extent: f64, seed: u64) -> rpdbscan_geom::Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat = Vec::with_capacity(n * 2);
    for _ in 0..n * 2 {
        flat.push(rng.gen_range(0.0..extent));
    }
    rpdbscan_geom::Dataset::from_flat(2, flat).expect("well-formed flat buffer")
}

/// Mostly-uniform sparse field with a 5% dense tail in a few tight
/// blobs. The uniform mass is near-singleton cells — the regime where
/// unconditional planning historically lost — while the blob cells sit
/// far above the routing threshold, so a correct cost model plans them
/// and a broken one shows up as routed < 1.0×.
fn sparse_with_tail(n: usize, extent: f64, seed: u64) -> rpdbscan_geom::Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_blob = n / 20;
    let blobs = 4usize;
    let mut flat = Vec::with_capacity(n * 2);
    for _ in 0..(n - n_blob) * 2 {
        flat.push(rng.gen_range(0.0..extent));
    }
    let centers: Vec<(f64, f64)> = (0..blobs)
        .map(|_| {
            (
                rng.gen_range(5.0..extent - 5.0),
                rng.gen_range(5.0..extent - 5.0),
            )
        })
        .collect();
    for i in 0..n_blob {
        let (cx, cy) = centers[i % blobs];
        flat.push(cx + rng.gen_range(-0.3..0.3));
        flat.push(cy + rng.gen_range(-0.3..0.3));
    }
    rpdbscan_geom::Dataset::from_flat(2, flat).expect("well-formed flat buffer")
}

fn bench_shape(
    shape: &str,
    data: rpdbscan_geom::Dataset,
    eps: f64,
    repeats: usize,
) -> Vec<QueryRow> {
    let n = data.len();
    let spec = GridSpec::new(2, eps, RHO).expect("valid grid");
    let dict = CellDictionary::build_from_points(spec.clone(), data.iter().map(|(_, p)| p));
    let index = DictionaryIndex::new(dict, 1 << 16);
    let cells = group_by_cell(&spec, &data);
    let n_cells = cells.len();
    let model = PlannerCostModel::calibrate(&index);
    let cells_routed_planned = cells
        .iter()
        .filter(|c| model.route(c.points.len()) == QueryRoute::Planned)
        .count();

    // Min-of-repeats with the three paths interleaved per repeat, so
    // drift (frequency scaling, cache state) hits all paths alike and
    // the min is a stable floor for the routed ≥ 1.0× gate.
    let mut r = RegionQueryResult::default();
    let mut scratch = vec![0.0; 2];
    let mut best = [f64::INFINITY; 3]; // unplanned, planned, routed
    let mut density = [0u64; 3];
    for _ in 0..repeats {
        // Unplanned: the per-point oracle, scratch threaded exactly as
        // the pre-planner Phase II loop ran it.
        let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        let mut d = 0u64;
        for cell in &cells {
            for &pid in &cell.points {
                index.region_query_cells_scratch(data.point(pid), &mut r, &mut scratch);
                d += r.density;
            }
        }
        best[0] = best[0].min(t0.elapsed().as_secs_f64());
        density[0] = d;

        // Planned: build each cell's plan unconditionally (build time
        // included — that is the real Phase II cost).
        let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        let mut d = 0u64;
        for cell in &cells {
            let idx = index.dict().index_of(&cell.coord).expect("occupied cell");
            let plan = CellQueryPlan::build(&index, idx);
            for &pid in &cell.points {
                plan.query_into(data.point(pid), &mut r);
                d += r.density;
            }
        }
        best[1] = best[1].min(t0.elapsed().as_secs_f64());
        density[1] = d;

        // Routed: the production path — the cost model picks per cell.
        let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        let mut d = 0u64;
        for cell in &cells {
            match model.route(cell.points.len()) {
                QueryRoute::Planned => {
                    let idx = index.dict().index_of(&cell.coord).expect("occupied cell");
                    let plan = CellQueryPlan::build(&index, idx);
                    for &pid in &cell.points {
                        plan.query_into(data.point(pid), &mut r);
                        d += r.density;
                    }
                }
                QueryRoute::Kd => {
                    for &pid in &cell.points {
                        index.region_query_cells_scratch(data.point(pid), &mut r, &mut scratch);
                        d += r.density;
                    }
                }
            }
        }
        best[2] = best[2].min(t0.elapsed().as_secs_f64());
        density[2] = d;
    }

    assert_eq!(
        density[1], density[0],
        "{shape}: planned path diverged from the oracle"
    );
    assert_eq!(
        density[2], density[0],
        "{shape}: routed path diverged from the oracle"
    );

    let row = |path: &str, seconds: f64, planned: usize, kd: usize| QueryRow {
        shape: shape.to_string(),
        path: path.to_string(),
        points: n,
        cells: n_cells,
        points_per_cell: n as f64 / n_cells as f64,
        seconds,
        qps: n as f64 / seconds,
        ns_per_point: seconds * 1e9 / n as f64,
        speedup_vs_unplanned: best[0] / seconds,
        cells_planned: planned,
        cells_kd: kd,
    };
    let rows = vec![
        row("unplanned", best[0], 0, n_cells),
        row("planned", best[1], n_cells, 0),
        row(
            "routed",
            best[2],
            cells_routed_planned,
            n_cells - cells_routed_planned,
        ),
    ];
    for r in &rows {
        println!(
            "{:>7}/{:<9}: {:>8} pts, {:>6} cells ({:>7.1} pts/cell)  {:>8.1} ns/pt  {:>5.2}x  ({} planned / {} kd)",
            r.shape, r.path, r.points, r.cells, r.points_per_cell, r.ns_per_point,
            r.speedup_vs_unplanned, r.cells_planned, r.cells_kd
        );
    }
    rows
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, repeats) = if smoke {
        (4_000, 5)
    } else {
        ((60_000.0 * scale()) as usize, 3)
    };
    println!(
        "Region-query throughput (n={n}, rho={RHO}{})",
        if smoke { " [smoke]" } else { "" }
    );
    let mut rows = Vec::new();
    // eps=1.6 over [0,8)²: ~7×7 cells of side 1.13 → hundreds of
    // points per cell (well past the ≥16 pts/cell dense regime).
    rows.extend(bench_shape("dense", uniform(n, 8.0, 42), 1.6, repeats));
    // eps=0.8, extent scaled with √n so uniform occupancy stays ~3
    // pts/cell at every n (80 at the default 60k): near-singleton cells
    // plus a 5% blob tail the router must pick out. Keeping occupancy
    // scale-invariant keeps the routed win structural in smoke runs too
    // — shrinking n at fixed extent would starve the blob cells and
    // turn the ≥1.0× gate into a coin flip on timing noise. The sparse
    // shape also keeps a larger smoke n than dense: its per-point cost
    // is ~100× lower (near-singleton neighbourhoods), so a dense-sized
    // smoke run would finish in single-digit milliseconds — below the
    // noise floor the hard ≥1.0× gate needs — while dense at this n
    // would dominate CI time.
    let n_sparse = if smoke { 30_000 } else { n };
    let sparse_extent = 80.0 * (n_sparse as f64 / 60_000.0).sqrt();
    rows.extend(bench_shape(
        "sparse",
        sparse_with_tail(n_sparse, sparse_extent, 42),
        0.8,
        repeats,
    ));

    // The routing gate: self-selection must never lose to the oracle on
    // either shape. This is the assertion that turns a bench-smoke CI
    // run red when a cost-model regression reintroduces the 0.69× case.
    for r in rows.iter().filter(|r| r.path == "routed") {
        assert!(
            r.speedup_vs_unplanned >= 1.0,
            "routed gate: {} shape at {:.3}x < 1.0x vs unplanned",
            r.shape,
            r.speedup_vs_unplanned
        );
        println!(
            "routed gate: {} {:.2}x >= 1.0x ok",
            r.shape, r.speedup_vs_unplanned
        );
    }

    write_csv("query_throughput", &rows);
    let mut doc = Value::object();
    doc.insert("workload", "uniform 2d");
    doc.insert("points", n);
    doc.insert("rho", RHO);
    doc.insert("smoke", Value::Bool(smoke));
    doc.insert(
        "rows",
        Value::Array(rows.iter().map(|r| r.to_json()).collect()),
    );
    let path = "BENCH_query.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create json"));
    writeln!(f, "{doc}").expect("write json");
    println!("wrote {path}");
}
