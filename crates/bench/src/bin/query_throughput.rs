//! Planned vs unplanned `(ε,ρ)`-region query throughput.
//!
//! The Phase II hot path answers one region query per point. The
//! cell-level planner (`CellQueryPlan`) amortises the kd-tree candidate
//! search and sub-cell classification over all points of a cell; this
//! binary measures what that buys on two workload shapes:
//!
//! * **dense** — points packed ≥ 16 per cell, where one plan serves many
//!   queries (the shape Phase II sees on clustered data);
//! * **sparse** — a few points per cell, where plan builds amortise
//!   poorly (the planner's worst case).
//!
//! Both paths are timed over identical per-point query sequences, with
//! densities cross-checked so a divergence fails loudly. Results land in
//! `BENCH_query.json` (plus the usual CSV under `target/experiments/`).
//!
//! ```sh
//! cargo run --release -p rpdbscan-bench --bin query_throughput
//! cargo run --release -p rpdbscan-bench --bin query_throughput -- --smoke
//! ```
//!
//! `--smoke` shrinks the workload for CI: same code path, well-formed
//! JSON, meaningless timings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpdbscan_bench::{scale, write_csv, RHO};
use rpdbscan_core::partition::group_by_cell;
use rpdbscan_grid::{CellDictionary, CellQueryPlan, DictionaryIndex, GridSpec, RegionQueryResult};
use rpdbscan_json::{ToJson, Value};
use std::io::Write;
use std::time::Instant;

struct QueryRow {
    shape: String,
    points: usize,
    cells: usize,
    points_per_cell: f64,
    planned_sec: f64,
    unplanned_sec: f64,
    planned_qps: f64,
    unplanned_qps: f64,
    planned_ns_per_point: f64,
    unplanned_ns_per_point: f64,
    speedup: f64,
}

rpdbscan_json::impl_to_json!(QueryRow {
    shape,
    points,
    cells,
    points_per_cell,
    planned_sec,
    unplanned_sec,
    planned_qps,
    unplanned_qps,
    planned_ns_per_point,
    unplanned_ns_per_point,
    speedup
});

/// Uniform points over `[0, extent)²` — cell occupancy is set by the
/// extent/ε ratio, which is all that matters to the planner.
fn uniform(n: usize, extent: f64, seed: u64) -> rpdbscan_geom::Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flat = Vec::with_capacity(n * 2);
    for _ in 0..n * 2 {
        flat.push(rng.gen_range(0.0..extent));
    }
    rpdbscan_geom::Dataset::from_flat(2, flat).expect("well-formed flat buffer")
}

fn bench_shape(shape: &str, n: usize, extent: f64, eps: f64, repeats: usize) -> QueryRow {
    let data = uniform(n, extent, 42);
    let spec = GridSpec::new(2, eps, RHO).expect("valid grid");
    let dict = CellDictionary::build_from_points(spec.clone(), data.iter().map(|(_, p)| p));
    let index = DictionaryIndex::new(dict, 1 << 16);
    let cells = group_by_cell(&spec, &data);
    let n_cells = cells.len();

    // Unplanned: the per-point oracle, scratch threaded exactly as the
    // pre-planner Phase II loop ran it.
    let mut r = RegionQueryResult::default();
    let mut scratch = vec![0.0; 2];
    let mut unplanned_density = 0u64;
    let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    for _ in 0..repeats {
        unplanned_density = 0;
        for cell in &cells {
            for &pid in &cell.points {
                index.region_query_cells_scratch(data.point(pid), &mut r, &mut scratch);
                unplanned_density += r.density;
            }
        }
    }
    let unplanned_sec = t0.elapsed().as_secs_f64() / repeats as f64;

    // Planned: build each cell's plan once (build time included — that is
    // the real Phase II cost), answer all its points through it.
    let mut planned_density = 0u64;
    let t0 = Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    for _ in 0..repeats {
        planned_density = 0;
        for cell in &cells {
            let idx = index.dict().index_of(&cell.coord).expect("occupied cell");
            let plan = CellQueryPlan::build(&index, idx);
            for &pid in &cell.points {
                plan.query_into(data.point(pid), &mut r);
                planned_density += r.density;
            }
        }
    }
    let planned_sec = t0.elapsed().as_secs_f64() / repeats as f64;

    assert_eq!(
        planned_density, unplanned_density,
        "{shape}: planned path diverged from the oracle"
    );

    let row = QueryRow {
        shape: shape.to_string(),
        points: n,
        cells: n_cells,
        points_per_cell: n as f64 / n_cells as f64,
        planned_sec,
        unplanned_sec,
        planned_qps: n as f64 / planned_sec,
        unplanned_qps: n as f64 / unplanned_sec,
        planned_ns_per_point: planned_sec * 1e9 / n as f64,
        unplanned_ns_per_point: unplanned_sec * 1e9 / n as f64,
        speedup: unplanned_sec / planned_sec,
    };
    println!(
        "{:>7}: {:>8} pts, {:>6} cells ({:>7.1} pts/cell)  planned {:>8.1} ns/pt  unplanned {:>8.1} ns/pt  {:>5.2}x",
        row.shape,
        row.points,
        row.cells,
        row.points_per_cell,
        row.planned_ns_per_point,
        row.unplanned_ns_per_point,
        row.speedup
    );
    row
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, repeats) = if smoke {
        (4_000, 1)
    } else {
        ((60_000.0 * scale()) as usize, 3)
    };
    println!(
        "Region-query throughput (n={n}, rho={RHO}{})",
        if smoke { " [smoke]" } else { "" }
    );
    let rows = vec![
        // eps=1.6 over [0,8)²: ~7×7 cells of side 1.13 → hundreds of
        // points per cell (well past the ≥16 pts/cell dense regime).
        bench_shape("dense", n, 8.0, 1.6, repeats),
        // eps=0.8 over [0,80)²: ~141×141 cells → a handful per cell.
        bench_shape("sparse", n, 80.0, 0.8, repeats),
    ];

    write_csv("query_throughput", &rows);
    let mut doc = Value::object();
    doc.insert("workload", "uniform 2d");
    doc.insert("points", n);
    doc.insert("rho", RHO);
    doc.insert("smoke", Value::Bool(smoke));
    doc.insert(
        "rows",
        Value::Array(rows.iter().map(|r| r.to_json()).collect()),
    );
    let path = "BENCH_query.json";
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create json"));
    writeln!(f, "{doc}").expect("write json");
    println!("wrote {path}");
}
