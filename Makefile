# Canonical entry points for the RP-DBSCAN reproduction.

.PHONY: build test lint bench experiments examples doc clean

build:
	cargo build --workspace --release

test:
	cargo test --workspace

# Local pre-push gate, matching CI's lint + static-analysis + model
# jobs exactly: formatting, clippy at deny-warnings, the workspace
# invariant linter (writes LINT.json at the repo root), and the
# exhaustive interleaving sweep over the concurrency protocols.
lint:
	cargo fmt --check
	cargo clippy --workspace -- -D warnings
	cargo run -p xtask -- lint
	cargo test -q -p model

bench:
	cargo bench --workspace

# Regenerate every table and figure of the paper (CSV + SVG under
# target/experiments/, logs under target/experiments/logs/).
experiments: build
	@mkdir -p target/experiments/logs
	@for bin in fig11_elapsed fig12_breakdown fig13_load_imbalance \
	            fig14_duplication fig15_scalability table4_accuracy \
	            table5_dict_size fig17_edge_reduction fig19_skewness \
	            fig20_datasize ablation_partitioning ablation_dictionary; do \
	    echo "== $$bin"; \
	    cargo run --release -p rpdbscan-bench --bin $$bin \
	        > target/experiments/logs/$$bin.log 2>&1 || echo "FAILED: $$bin"; \
	done

examples: build
	cargo run --release --example quickstart
	cargo run --release --example accuracy_vs_exact
	cargo run --release --example skewed_geo
	cargo run --release --example compare_algorithms
	cargo run --release --example engine_tour

doc:
	cargo doc --workspace --no-deps

clean:
	cargo clean
