//! `rpdbscan` — command-line interface to the RP-DBSCAN reproduction.
//!
//! ```text
//! rpdbscan generate <kind> <n> <out.csv> [--seed S]
//! rpdbscan ingest   <in.csv> --out <store> --eps E [--rho R]
//!                   [--page-rows N] [--delim C]
//! rpdbscan cluster  <in.csv> <out.csv> --eps E --min-pts M
//!                   [--algo rp|exact|esp|rbp|cbp|spark|ng]
//!                   [--rho R] [--partitions K] [--workers W] [--delim C]
//! rpdbscan cluster  <out.labels> --store <file> --min-pts M
//!                   [--mem-budget B] [--spill-dir D]
//!                   [--partitions K] [--workers W]
//! rpdbscan stream   <in.csv> <out.csv> --eps E --min-pts M --batch B
//!                   [--rho R] [--workers W] [--window N]
//!                   [--order file|shuffled|locality|sliding]
//!                   [--seed S] [--delim C]
//! rpdbscan serve    <in.csv> --eps E --min-pts M [--queries q.csv]
//!                   [--out labels.csv] [--shards K] [--workers W]
//!                   [--rho R] [--queue CAP] [--delim C]
//!                   [--window N --batch B [--order O] [--seed S]]
//! rpdbscan compare  <in.csv> --eps E --min-pts M [--workers W]
//! rpdbscan metrics  <a.csv> <b.csv>
//! rpdbscan plot     <labeled.csv> <out.svg>
//! ```
//!
//! `stream` replays the input as insert micro-batches of `B` points
//! through [`StreamingRpDbscan`], printing one line per epoch, and writes
//! the final labels — byte-for-byte the clustering `cluster --algo rp`
//! would produce on the same points.
//!
//! `stream --window N` keeps only the newest `N` points live: each
//! micro-batch expires the oldest arrivals past the window through the
//! exact deletion-repair path, and the final labels cover the survivors.
//!
//! `serve` clusters the input once, builds a sharded [`ServingIndex`],
//! and classifies query coordinates through the micro-batched [`Server`]
//! read path. Without `--queries` it re-serves the input points and
//! reports agreement with the stored labels (always 100% — classification
//! replays Phase III exactly).
//!
//! `serve --window N --batch B` instead replays the input as a sliding
//! window of `N` points and *delta-publishes* each epoch: the first epoch
//! builds the index from the stream, every later one patches the previous
//! generation copy-on-write ([`ServingIndex::patch_from_stream`]), and
//! queries are answered from the final published generation.
//!
//! `ingest` streams a CSV into an out-of-core column store: points are
//! sorted by grid cell under `(ε, ρ)` and written as paged,
//! checksummed per-dimension columns plus a cell directory. `cluster
//! --store <file>` then runs the out-of-core pipeline against it under a
//! byte-capped buffer pool (`--mem-budget`, default ¼ of the dataset's
//! resident size), spilling per-partition cell graphs to disk, and
//! writes one cluster label per line in original point order — the
//! labels are bit-identical to what the resident pipeline produces.
//!
//! `generate` kinds: `moons`, `blobs`, `chameleon`, `geolife`, `cosmo`,
//! `osm`, `teraclick`, `mixture:<dim>:<alpha>`, `uniform:<dim>:<range>`.
//! Labeled CSVs carry the cluster id as a trailing column (−1 = noise).

use rp_dbscan::data::io;
use rp_dbscan::metrics::{adjusted_rand_index, normalized_mutual_info};
use rp_dbscan::prelude::*;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  rpdbscan generate <kind> <n> <out.csv> [--seed S]
  rpdbscan ingest   <in.csv> --out <store> --eps E [--rho R] [options]
  rpdbscan cluster  <in.csv> <out.csv> --eps E --min-pts M [options]
  rpdbscan cluster  <out.labels> --store <file> --min-pts M [options]
  rpdbscan stream   <in.csv> <out.csv> --eps E --min-pts M --batch B [options]
  rpdbscan serve    <in.csv> --eps E --min-pts M [options]
  rpdbscan compare  <in.csv> --eps E --min-pts M [--workers W]
  rpdbscan metrics  <a.csv> <b.csv>
  rpdbscan plot     <labeled.csv> <out.svg>

ingest options:
  --out F          output store file     (required)
  --eps E          grid cell side = eps/sqrt(dim)   (required)
  --rho R          approximation rate    (default 0.01)
  --page-rows N    rows per page         (default 4096)
  --delim C        field delimiter       (default ,)

cluster options:
  --algo rp|exact|esp|rbp|cbp|spark|ng   (default rp)
  --rho R          approximation rate    (default 0.01)
  --partitions K   RP partitions / region splits (default 32)
  --workers W      simulated workers     (default 8)
  --delim C        field delimiter       (default ,)
  --density-backend exact|knn|sampled    Phase II density estimator (default exact; rp only)
  --knn-k K        kNN-graph neighbours per point   (knn backend, default 10)
  --sample-frac S  core-candidate sample fraction   (sampled backend, default 0.1)

cluster --store options (out-of-core; eps/rho come from the store header):
  --store F        column store written by ingest
  --mem-budget B   buffer-pool byte cap, K/M/G suffixes allowed
                   (default: resident size / 4)
  --spill-dir D    directory for merge spill files  (default: temp dir)
  --eps E, --rho R verified against the store header if given
  --min-pts, --partitions, --workers as above

stream options:
  --batch B        points per insert micro-batch (required)
  --window N       sliding window: keep only the newest N points live
  --order file|shuffled|locality|sliding   arrival order  (default file)
  --seed S         shuffle seed          (default 0)
  --save-dict F    write the final cell dictionary (wire format) to F
  --check-dict F   decode F and verify it matches this run's grid
  --density-backend B   must be exact: streaming has no approximate repair path
  --rho, --workers, --delim as above

serve options:
  --queries F      CSV of coordinates to classify (default: the input)
  --out F          write classified queries as a labeled CSV to F
  --shards K       index shards         (default 4)
  --queue CAP      admission queue capacity / micro-batch size (default 1024)
  --window N       sliding-window replay with per-epoch delta publishes
  --batch B        replay micro-batch size  (required with --window)
  --order, --seed  arrival order for the windowed replay, as in stream
  --density-backend B   must be exact: classification replays the exact cell graph
  --rho, --workers, --delim as above

generate kinds: moons blobs chameleon geolife cosmo osm teraclick
                hyperteraclick:<dim> mixture:<dim>:<alpha> uniform:<dim>:<range>";

/// Minimal flag scanner: returns the value following `--name`.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v:?}")),
        None => Ok(default),
    }
}

fn require<T: std::str::FromStr>(args: &[String], name: &str) -> Result<T, String> {
    flag(args, name)
        .ok_or_else(|| format!("missing required flag {name}"))?
        .parse()
        .map_err(|_| format!("invalid value for {name}"))
}

/// Parses `--density-backend` plus its backend-specific knobs.
fn parse_backend(args: &[String]) -> Result<DensityBackendKind, String> {
    let name = flag(args, "--density-backend").unwrap_or_else(|| "exact".into());
    match name.as_str() {
        "exact" => Ok(DensityBackendKind::Exact),
        "knn" => Ok(DensityBackendKind::MutualKnn {
            k: parse_flag(args, "--knn-k", 10)?,
        }),
        "sampled" => Ok(DensityBackendKind::SampledCore {
            sample_frac: parse_flag(args, "--sample-frac", 0.1)?,
        }),
        other => Err(format!(
            "unknown --density-backend {other:?} (expected exact, knn, or sampled)"
        )),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("no command given")?;
    match cmd.as_str() {
        "generate" => generate(&args[1..]),
        "ingest" => ingest(&args[1..]),
        "cluster" => cluster(&args[1..]),
        "stream" => stream(&args[1..]),
        "serve" => serve(&args[1..]),
        "compare" => compare(&args[1..]),
        "metrics" => metrics(&args[1..]),
        "plot" => plot(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn generate(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("generate: missing <kind>")?.clone();
    let n: usize = args
        .get(1)
        .ok_or("generate: missing <n>")?
        .parse()
        .map_err(|_| "generate: <n> must be an integer")?;
    let out = PathBuf::from(args.get(2).ok_or("generate: missing <out.csv>")?);
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let cfg = SynthConfig::new(n).with_seed(seed);
    let data = match kind.as_str() {
        "moons" => synth::moons(cfg, 0.05),
        "blobs" => synth::blobs(cfg, 6, 1.5, 100.0),
        "chameleon" => synth::chameleon_like(cfg),
        "geolife" => synth::geolife_like(cfg),
        "cosmo" => synth::cosmo_like(cfg),
        "osm" => synth::osm_like(cfg),
        "teraclick" => synth::teraclick_like(cfg),
        other => {
            let parts: Vec<&str> = other.split(':').collect();
            match parts.as_slice() {
                ["mixture", dim, alpha] => {
                    let dim: usize = dim.parse().map_err(|_| "bad mixture dim")?;
                    let alpha: f64 = alpha.parse().map_err(|_| "bad mixture alpha")?;
                    synth::gaussian_mixture(cfg, dim, alpha)
                }
                ["uniform", dim, range] => {
                    let dim: usize = dim.parse().map_err(|_| "bad uniform dim")?;
                    let range: f64 = range.parse().map_err(|_| "bad uniform range")?;
                    synth::uniform(cfg, dim, range)
                }
                ["hyperteraclick", dim] => {
                    let dim: usize = dim.parse().map_err(|_| "bad hyperteraclick dim")?;
                    if dim == 0 {
                        return Err("hyperteraclick dim must be >= 1".into());
                    }
                    synth::hyper_teraclick_like(cfg, dim)
                }
                _ => return Err(format!("unknown generate kind {kind:?}")),
            }
        }
    };
    io::write_csv(&out, &data, ',').map_err(|e| e.to_string())?;
    println!(
        "wrote {} points ({}d) to {}",
        data.len(),
        data.dim(),
        out.display()
    );
    Ok(())
}

fn load(path: &Path, delim: char) -> Result<Dataset, String> {
    io::read_csv(path, delim).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parses a byte count with an optional K/M/G/T suffix (powers of 1024).
fn parse_bytes(v: &str) -> Result<u64, String> {
    let v = v.trim();
    let bad = || format!("invalid byte count {v:?} (expected e.g. 1073741824, 256M, 2G)");
    let (digits, shift) = match v.chars().last() {
        Some('K' | 'k') => (&v[..v.len() - 1], 10),
        Some('M' | 'm') => (&v[..v.len() - 1], 20),
        Some('G' | 'g') => (&v[..v.len() - 1], 30),
        Some('T' | 't') => (&v[..v.len() - 1], 40),
        Some(_) => (v, 0),
        None => return Err(bad()),
    };
    let n: u64 = digits.trim().parse().map_err(|_| bad())?;
    n.checked_mul(1u64 << shift).ok_or_else(bad)
}

/// `rpdbscan ingest <in.csv> --out <store> --eps E [--rho R] …` —
/// streams the CSV row-by-row into a cell-sorted column store.
fn ingest(args: &[String]) -> Result<(), String> {
    let input = PathBuf::from(args.first().ok_or("ingest: missing <in.csv>")?);
    let out = PathBuf::from(flag(args, "--out").ok_or("missing required flag --out")?);
    let eps: f64 = require(args, "--eps")?;
    let rho: f64 = parse_flag(args, "--rho", 0.01)?;
    let page_rows: u32 = parse_flag(args, "--page-rows", rp_dbscan::store::DEFAULT_PAGE_ROWS)?;
    let delim: char = parse_flag(args, "--delim", ',')?;

    // The grid (and with it the writer) is created lazily on the first
    // row, once the dimensionality is known.
    let mut writer: Option<rp_dbscan::store::StoreWriter> = None;
    let mut dim = 0usize;
    io::for_each_csv_row(&input, delim, |row| {
        let w = match &mut writer {
            Some(w) => w,
            None => {
                dim = row.len();
                let spec = GridSpec::new(dim, eps, rho).map_err(|e| e.to_string())?;
                let fresh = rp_dbscan::store::StoreWriter::new(spec, page_rows)
                    .map_err(|e| e.to_string())?;
                writer.get_or_insert(fresh)
            }
        };
        w.push(row).map_err(|e| e.to_string())
    })
    .map_err(|e| format!("{}: {e}", input.display()))?;
    let writer = writer.ok_or_else(|| {
        format!(
            "{}: input has no points, cannot infer dimensionality",
            input.display()
        )
    })?;
    let stats = writer
        .finish(&out)
        .map_err(|e| format!("{}: {e}", out.display()))?;
    println!(
        "ingested {} points ({dim}d) into {}: {} cells, {} pages, {} bytes",
        stats.points,
        out.display(),
        stats.cells,
        stats.pages,
        stats.file_bytes
    );
    Ok(())
}

/// `rpdbscan cluster <out.labels> --store <file> …` — the out-of-core
/// pipeline: pool-pinned page reads under a byte budget, spill-to-disk
/// tournament merge, one label per output line in original point order.
fn cluster_store(args: &[String]) -> Result<(), String> {
    let output = PathBuf::from(args.first().ok_or("cluster: missing <out.labels>")?);
    if output.to_string_lossy().starts_with("--") {
        return Err("cluster: the <out.labels> positional must come before flags".into());
    }
    let store_path = PathBuf::from(flag(args, "--store").ok_or("missing required flag --store")?);
    let min_pts: usize = require(args, "--min-pts")?;
    let partitions: usize = parse_flag(args, "--partitions", 32)?;
    let workers: usize = parse_flag(args, "--workers", 8)?;

    let store = rp_dbscan::store::ColumnStore::open(&store_path)
        .map_err(|e| format!("{}: {e}", store_path.display()))?;
    let store = std::sync::Arc::new(store);
    // ε/ρ are baked into the store's cell lattice; explicit flags are
    // still accepted and verified bitwise by the driver (GridMismatch).
    let eps: f64 = parse_flag(args, "--eps", store.eps())?;
    let rho: f64 = parse_flag(args, "--rho", store.rho())?;
    let budget = match flag(args, "--mem-budget") {
        Some(v) => parse_bytes(&v)?,
        None => (store.resident_bytes() / 4).max(64 * 1024),
    };
    let mut cfg = OutOfCoreConfig::new(budget);
    if let Some(d) = flag(args, "--spill-dir") {
        cfg = cfg.with_spill_dir(PathBuf::from(d));
    }
    println!(
        "store {}: {} points ({}d), {} cells, eps {} rho {}, {} file bytes",
        store_path.display(),
        store.len(),
        store.dim(),
        store.cells().len(),
        store.eps(),
        store.rho(),
        store.file_bytes()
    );

    let params = RpDbscanParams::new(eps, min_pts)
        .with_rho(rho)
        .with_partitions(partitions);
    let engine = Engine::new(workers);
    let start = std::time::Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    let out = RpDbscan::new(params)
        .map_err(|e| e.to_string())?
        .run_out_of_core(&store, &cfg, &engine)
        .map_err(|e| e.to_string())?;
    let wall = start.elapsed().as_secs_f64();
    let s = &out.stats;
    println!(
        "pool: budget {} bytes, {} hits / {} misses, {} evictions, peak tracked {} bytes",
        s.pool_budget_bytes,
        s.pool_hits,
        s.pool_misses,
        s.pool_evictions,
        s.pool_peak_tracked_bytes
    );
    println!(
        "spill: {} bytes written, {} bytes read, merge frontier peak {} bytes",
        s.spill_bytes_written, s.spill_bytes_read, s.merge_peak_frontier_bytes
    );
    println!(
        "rp (out-of-core): {} clusters, {} noise, {wall:.2}s wall, {:.3}s simulated",
        out.clustering.num_clusters(),
        out.clustering.noise_count(),
        engine.report().total_elapsed()
    );
    write_labels(&output, &out.clustering)?;
    println!("wrote labels to {}", output.display());
    Ok(())
}

/// Writes one cluster label per line (−1 = noise), line `i` belonging to
/// original point `i`. Unlike a labeled CSV this needs no coordinates,
/// so the out-of-core path never has to materialise the dataset.
fn write_labels(path: &Path, clustering: &Clustering) -> Result<(), String> {
    use std::io::Write;
    let file = std::fs::File::create(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut w = std::io::BufWriter::new(file);
    let mut write = || -> std::io::Result<()> {
        for label in clustering.labels() {
            match label {
                Some(c) => writeln!(w, "{c}")?,
                None => writeln!(w, "-1")?,
            }
        }
        w.flush()
    };
    write().map_err(|e| format!("{}: {e}", path.display()))
}

fn cluster(args: &[String]) -> Result<(), String> {
    if flag(args, "--store").is_some() {
        return cluster_store(args);
    }
    let input = PathBuf::from(args.first().ok_or("cluster: missing <in.csv>")?);
    let output = PathBuf::from(args.get(1).ok_or("cluster: missing <out.csv>")?);
    let eps: f64 = require(args, "--eps")?;
    let min_pts: usize = require(args, "--min-pts")?;
    let algo = flag(args, "--algo").unwrap_or_else(|| "rp".into());
    let rho: f64 = parse_flag(args, "--rho", 0.01)?;
    let partitions: usize = parse_flag(args, "--partitions", 32)?;
    let workers: usize = parse_flag(args, "--workers", 8)?;
    let delim: char = parse_flag(args, "--delim", ',')?;
    let backend = parse_backend(args)?;
    if !backend.is_exact() && algo != "rp" {
        return Err(format!(
            "--density-backend {} only applies to --algo rp",
            backend.name()
        ));
    }

    let data = load(&input, delim)?;
    println!("loaded {} points ({}d)", data.len(), data.dim());
    let engine = Engine::new(workers);
    let start = std::time::Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
    let clustering = match algo.as_str() {
        "rp" if !backend.is_exact() => {
            let params = RpDbscanParams::new(eps, min_pts)
                .with_rho(rho)
                .with_partitions(partitions)
                .with_density_backend(backend);
            let be = rp_dbscan::density::backend_for(&params).map_err(|e| e.to_string())?;
            let out = be.cluster(&data, &engine).map_err(|e| e.to_string())?;
            println!(
                "density backend {}: {} neighbour searches, {} core points",
                out.stats.backend,
                out.stats.neighbor_searches,
                out.stats
                    .core_points
                    .map_or_else(|| "?".into(), |c| c.to_string()),
            );
            out.clustering
        }
        "rp" => {
            let params = RpDbscanParams::new(eps, min_pts)
                .with_rho(rho)
                .with_partitions(partitions);
            let out = RpDbscan::new(params)
                .map_err(|e| e.to_string())?
                .run(&data, &engine)
                .map_err(|e| e.to_string())?;
            println!(
                "dictionary: {} cells / {} sub-cells, {} bytes broadcast",
                out.stats.dict_cells, out.stats.dict_subcells, out.stats.dict_wire_bytes
            );
            out.clustering
        }
        "exact" => exact_dbscan(&data, eps, min_pts).clustering,
        "esp" | "rbp" | "cbp" | "spark" => {
            let params = match algo.as_str() {
                "esp" => RegionParams::esp(eps, min_pts, rho, partitions),
                "rbp" => RegionParams::rbp(eps, min_pts, rho, partitions),
                "cbp" => RegionParams::cbp(eps, min_pts, rho, partitions),
                _ => RegionParams::spark(eps, min_pts, partitions),
            };
            RegionDbscan::new(params)
                .run(&data, &engine)
                .map_err(|e| e.to_string())?
                .clustering
        }
        "ng" => {
            NgDbscan::new(NgParams::new(eps, min_pts))
                .run(&data, &engine)
                .map_err(|e| e.to_string())?
                .clustering
        }
        other => return Err(format!("unknown --algo {other:?}")),
    };
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{algo}: {} clusters, {} noise, {wall:.2}s wall, {:.3}s simulated",
        clustering.num_clusters(),
        clustering.noise_count(),
        engine.report().total_elapsed()
    );
    io::write_labeled_csv(&output, &data, &clustering, delim).map_err(|e| e.to_string())?;
    println!("wrote labels to {}", output.display());
    Ok(())
}

/// Resolves an `--order` flag into a visit permutation over `data`.
/// `locality` buckets by ε-sided cells; `sliding` sweeps the first axis
/// with ε of arrival jitter.
fn visit_order(order: &str, data: &Dataset, eps: f64, seed: u64) -> Result<Vec<u32>, String> {
    match order {
        "file" => Ok((0..data.len() as u32).collect()),
        "shuffled" => Ok(rp_dbscan::data::shuffled_order(data, seed)),
        "locality" => Ok(rp_dbscan::data::locality_order(data, eps, seed)),
        "sliding" => Ok(rp_dbscan::data::sliding_order(data, eps, seed)),
        other => Err(format!("unknown --order {other:?}")),
    }
}

fn stream(args: &[String]) -> Result<(), String> {
    let input = PathBuf::from(args.first().ok_or("stream: missing <in.csv>")?);
    let output = PathBuf::from(args.get(1).ok_or("stream: missing <out.csv>")?);
    let eps: f64 = require(args, "--eps")?;
    let min_pts: usize = require(args, "--min-pts")?;
    let batch: usize = require(args, "--batch")?;
    if batch == 0 {
        return Err("stream: --batch must be >= 1".into());
    }
    let rho: f64 = parse_flag(args, "--rho", 0.01)?;
    let workers: usize = parse_flag(args, "--workers", 8)?;
    let delim: char = parse_flag(args, "--delim", ',')?;
    let order = flag(args, "--order").unwrap_or_else(|| "file".into());
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let window: Option<usize> = flag(args, "--window")
        .map(|v| v.parse().map_err(|_| format!("invalid --window {v:?}")))
        .transpose()?;
    if window == Some(0) {
        return Err("stream: --window must be >= 1".into());
    }
    let save_dict = flag(args, "--save-dict").map(PathBuf::from);
    let check_dict = flag(args, "--check-dict").map(PathBuf::from);

    let data = load(&input, delim)?;
    println!("loaded {} points ({}d)", data.len(), data.dim());
    let idx = visit_order(&order, &data, eps, seed)?;
    // Streaming repair only exists for the exact backend; approximate
    // selections are rejected by `with_engine` with a typed error.
    let params = RpDbscanParams::new(eps, min_pts)
        .with_rho(rho)
        .with_density_backend(parse_backend(args)?);
    let engine = Engine::with_cost_model(workers, CostModel::free());
    let s =
        StreamingRpDbscan::with_engine(data.dim(), params, engine).map_err(|e| e.to_string())?;
    if let Some(p) = &check_dict {
        let bytes = std::fs::read(p).map_err(|e| format!("{}: {e}", p.display()))?;
        let dict = s
            .check_dictionary(&bytes)
            .map_err(|e| format!("{}: {e}", p.display()))?;
        println!(
            "checked dictionary {}: {} cells, grid compatible",
            p.display(),
            dict.num_cells()
        );
    }
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "epoch", "inserted", "expired", "total", "clusters", "changed", "dirty", "sec"
    );
    // An absent --window is an unbounded one: push_batch never expires.
    let mut w = SlidingWindow::new(s, window.unwrap_or(usize::MAX)).map_err(|e| e.to_string())?;
    for chunk in idx.chunks(batch) {
        let mut flat = Vec::with_capacity(chunk.len() * data.dim());
        for &i in chunk {
            flat.extend_from_slice(data.point_at(i as usize));
        }
        let t = std::time::Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        w.push_batch(&flat).map_err(|e| e.to_string())?;
        let snap = w.stream().snapshot();
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8.3}",
            snap.epoch,
            chunk.len(),
            w.last_expired(),
            snap.stats.live_points,
            snap.stats.num_clusters,
            snap.stats.last_changed_cells,
            snap.stats.last_dirty_cells,
            t.elapsed().as_secs_f64()
        );
    }
    let s = w.into_stream();
    let snap = s.snapshot();
    io::write_labeled_csv(&output, &s.dataset(), &snap.labels, delim).map_err(|e| e.to_string())?;
    println!("wrote labels to {}", output.display());
    if let Some(p) = &save_dict {
        let bytes = s.encode_dictionary();
        std::fs::write(p, &bytes).map_err(|e| format!("{}: {e}", p.display()))?;
        println!(
            "wrote dictionary ({} bytes) to {}",
            bytes.len(),
            p.display()
        );
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let input = PathBuf::from(args.first().ok_or("serve: missing <in.csv>")?);
    let eps: f64 = require(args, "--eps")?;
    let min_pts: usize = require(args, "--min-pts")?;
    let rho: f64 = parse_flag(args, "--rho", 0.01)?;
    let shards: usize = parse_flag(args, "--shards", 4)?;
    let workers: usize = parse_flag(args, "--workers", 8)?;
    let queue: usize = parse_flag(args, "--queue", 1024)?;
    let delim: char = parse_flag(args, "--delim", ',')?;
    if shards == 0 || queue == 0 {
        return Err("serve: --shards and --queue must be >= 1".into());
    }
    let queries_path = flag(args, "--queries").map(PathBuf::from);
    let out_path = flag(args, "--out").map(PathBuf::from);
    let window: Option<usize> = flag(args, "--window")
        .map(|v| v.parse().map_err(|_| format!("invalid --window {v:?}")))
        .transpose()?;
    if window == Some(0) {
        return Err("serve: --window must be >= 1".into());
    }

    let data = load(&input, delim)?;
    println!("loaded {} points ({}d)", data.len(), data.dim());
    // Classification replays the exact cell graph; an approximate
    // backend selection fails here (driver) and at the index build.
    let params = RpDbscanParams::new(eps, min_pts)
        .with_rho(rho)
        .with_density_backend(parse_backend(args)?);
    let config = ServerConfig {
        queue_capacity: queue,
        cache_capacity: 4096,
        ..ServerConfig::default()
    };
    // Both paths end with a published index and the labels the input's
    // points are stored under (the self-serve agreement oracle).
    let (server, stored, base_data) = if let Some(win) = window {
        serve_window_build(args, data, &params, eps, win, shards, workers, config)?
    } else {
        let out = RpDbscan::new(params)
            .map_err(|e| e.to_string())?
            .run_local(&data)
            .map_err(|e| e.to_string())?;
        println!(
            "clustered: {} clusters, {} noise",
            out.clustering.num_clusters(),
            out.clustering.noise_count()
        );
        let index =
            ServingIndex::from_batch(&data, &out, &params, shards, 1).map_err(|e| e.to_string())?;
        let server = Server::new(
            Engine::with_cost_model(workers, CostModel::free()),
            std::sync::Arc::new(index),
            config,
        );
        (server, out.clustering.labels().to_vec(), data)
    };
    {
        let index = server.index();
        println!(
            "serving index: {} shards, {} cells, {} points, generation {}, backend {}",
            index.num_shards(),
            index.num_cells(),
            index.num_points(),
            index.generation(),
            index.backend()
        );
    }

    let self_serve = queries_path.is_none();
    let qdata = match &queries_path {
        Some(p) => load(p, delim)?,
        None => base_data,
    };
    if qdata.dim() != server.index().spec().dim() {
        return Err(format!(
            "serve: query dimension {} does not match data dimension {}",
            qdata.dim(),
            server.index().spec().dim()
        ));
    }
    let mut labels: Vec<Option<u32>> = Vec::with_capacity(qdata.len());
    for chunk_start in (0..qdata.len()).step_by(queue) {
        let chunk_end = (chunk_start + queue).min(qdata.len());
        let reqs: Vec<rp_dbscan::serve::Request> = (chunk_start..chunk_end)
            .map(|i| rp_dbscan::serve::Request::Classify(qdata.point_at(i).to_vec()))
            .collect();
        for resp in server.execute(reqs).map_err(|e| e.to_string())? {
            match resp {
                rp_dbscan::serve::Response::Classified(c) => labels.push(c.label),
                other => return Err(format!("serve: unexpected response {other:?}")),
            }
        }
    }
    let clustered = labels.iter().filter(|l| l.is_some()).count();
    println!(
        "served {} classify queries: {} in clusters, {} noise",
        labels.len(),
        clustered,
        labels.len() - clustered
    );
    if self_serve {
        let agree = labels.iter().zip(&stored).filter(|(a, b)| a == b).count();
        println!(
            "agreement with stored labels: {}/{} ({:.1}%)",
            agree,
            labels.len(),
            100.0 * agree as f64 / labels.len().max(1) as f64
        );
    }
    let stats = server.stats();
    let us = |v: Option<f64>| v.unwrap_or(0.0) * 1e6;
    println!(
        "classify latency: p50 {:.1}us p95 {:.1}us p99 {:.1}us ({} batches, {} plan cache hits / {} misses)",
        us(stats.classify.p50()),
        us(stats.classify.p95()),
        us(stats.classify.p99()),
        stats.batches,
        stats.cache_hits,
        stats.cache_misses
    );
    if let Some(p) = &out_path {
        let clustering = Clustering::new(labels);
        io::write_labeled_csv(p, &qdata, &clustering, delim).map_err(|e| e.to_string())?;
        println!("wrote labels to {}", p.display());
    }
    Ok(())
}

/// Replays the input as a sliding window of `win` points and publishes
/// one index generation per epoch: a full [`ServingIndex::from_stream`]
/// build for the first, a copy-on-write [`ServingIndex::patch_from_stream`]
/// delta on top of the served generation for every later one (falling
/// back to a full build if the patch is rejected). Returns the server
/// with the final generation published, the survivors' stored labels,
/// and the survivors themselves as the self-serve query set.
#[allow(clippy::too_many_arguments)]
fn serve_window_build(
    args: &[String],
    data: Dataset,
    params: &RpDbscanParams,
    eps: f64,
    win: usize,
    shards: usize,
    workers: usize,
    config: ServerConfig,
) -> Result<(Server, Vec<Option<u32>>, Dataset), String> {
    let batch: usize = require(args, "--batch")?;
    if batch == 0 {
        return Err("serve: --batch must be >= 1".into());
    }
    let order = flag(args, "--order").unwrap_or_else(|| "file".into());
    let seed: u64 = parse_flag(args, "--seed", 0)?;
    let idx = visit_order(&order, &data, eps, seed)?;
    let engine = Engine::with_cost_model(workers, CostModel::free());
    let s =
        StreamingRpDbscan::with_engine(data.dim(), *params, engine).map_err(|e| e.to_string())?;
    let mut w = SlidingWindow::new(s, win).map_err(|e| e.to_string())?;
    let mut server: Option<Server> = None;
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9} {:>18} {:>8}",
        "epoch", "inserted", "expired", "live", "clusters", "publish", "sec"
    );
    for chunk in idx.chunks(batch) {
        let mut flat = Vec::with_capacity(chunk.len() * data.dim());
        for &i in chunk {
            flat.extend_from_slice(data.point_at(i as usize));
        }
        let t = std::time::Instant::now(); // lint:allow(determinism-time): wall-clock timing is printed for the user, not fed into clustering results
        w.push_batch(&flat).map_err(|e| e.to_string())?;
        let publish = match &server {
            None => {
                let index = std::sync::Arc::new(ServingIndex::from_stream(w.stream(), shards));
                server = Some(Server::new(
                    Engine::with_cost_model(workers, CostModel::free()),
                    index,
                    config.clone(),
                ));
                "full build".to_string()
            }
            Some(srv) => {
                let prev = srv.index();
                match ServingIndex::patch_from_stream(&prev, w.stream()) {
                    Ok(patched) => {
                        let label = patched.patch_summary().map_or_else(
                            || "patch".to_string(),
                            |p| {
                                format!("patch {}/{} shards", p.patched_shards(), p.shared_shards())
                            },
                        );
                        srv.publish_if_newer(std::sync::Arc::new(patched));
                        label
                    }
                    Err(_) => {
                        // Grid drift or a non-newer base: rebuild fully.
                        let index = ServingIndex::from_stream(w.stream(), shards);
                        srv.publish_if_newer(std::sync::Arc::new(index));
                        "full rebuild".to_string()
                    }
                }
            }
        };
        let snap = w.stream().snapshot();
        println!(
            "{:>6} {:>9} {:>9} {:>9} {:>9} {:>18} {:>8.3}",
            snap.epoch,
            chunk.len(),
            w.last_expired(),
            snap.stats.live_points,
            snap.stats.num_clusters,
            publish,
            t.elapsed().as_secs_f64()
        );
    }
    let server = server.ok_or("serve: input produced no epochs")?;
    let snap = w.stream().snapshot();
    Ok((server, snap.labels.labels().to_vec(), w.stream().dataset()))
}

fn compare(args: &[String]) -> Result<(), String> {
    let input = PathBuf::from(args.first().ok_or("compare: missing <in.csv>")?);
    let eps: f64 = require(args, "--eps")?;
    let min_pts: usize = require(args, "--min-pts")?;
    let workers: usize = parse_flag(args, "--workers", 8)?;
    let data = load(&input, ',')?;
    println!("loaded {} points ({}d)", data.len(), data.dim());
    let exact = exact_dbscan(&data, eps, min_pts);
    println!(
        "{:<14} {:>12} {:>9} {:>9} {:>8}",
        "algorithm", "simulated(s)", "clusters", "noise", "RI"
    );
    let ri = |c: &Clustering| rand_index(&exact.clustering, c, NoisePolicy::SingleCluster);
    // RP
    let engine = Engine::new(workers);
    let out = RpDbscan::new(RpDbscanParams::new(eps, min_pts).with_partitions(workers * 4))
        .map_err(|e| e.to_string())?
        .run(&data, &engine)
        .map_err(|e| e.to_string())?;
    println!(
        "{:<14} {:>12.3} {:>9} {:>9} {:>8.4}",
        "RP-DBSCAN",
        engine.report().total_elapsed(),
        out.clustering.num_clusters(),
        out.clustering.noise_count(),
        ri(&out.clustering)
    );
    for (name, params) in [
        ("ESP-DBSCAN", RegionParams::esp(eps, min_pts, 0.01, workers)),
        ("RBP-DBSCAN", RegionParams::rbp(eps, min_pts, 0.01, workers)),
        ("CBP-DBSCAN", RegionParams::cbp(eps, min_pts, 0.01, workers)),
        ("SPARK-DBSCAN", RegionParams::spark(eps, min_pts, workers)),
    ] {
        let engine = Engine::new(workers);
        let out = RegionDbscan::new(params)
            .run(&data, &engine)
            .map_err(|e| e.to_string())?;
        println!(
            "{:<14} {:>12.3} {:>9} {:>9} {:>8.4}",
            name,
            engine.report().total_elapsed(),
            out.clustering.num_clusters(),
            out.clustering.noise_count(),
            ri(&out.clustering)
        );
    }
    let engine = Engine::new(workers);
    let out = NgDbscan::new(NgParams::new(eps, min_pts))
        .run(&data, &engine)
        .map_err(|e| e.to_string())?;
    println!(
        "{:<14} {:>12.3} {:>9} {:>9} {:>8.4}",
        "NG-DBSCAN",
        engine.report().total_elapsed(),
        out.clustering.num_clusters(),
        out.clustering.noise_count(),
        ri(&out.clustering)
    );
    Ok(())
}

/// Splits a labeled CSV (trailing label column) into data + clustering.
fn load_labeled(path: &Path) -> Result<(Dataset, Clustering), String> {
    let combined = load(path, ',')?;
    if combined.dim() < 2 {
        return Err(format!(
            "{}: labeled files need >= 2 columns",
            path.display()
        ));
    }
    let dim = combined.dim() - 1;
    let mut b = DatasetBuilder::with_capacity(dim, combined.len()).expect("dim >= 1");
    let mut labels = Vec::with_capacity(combined.len());
    for (_, row) in combined.iter() {
        b.push(&row[..dim]).expect("dim matches");
        let l = row[dim];
        labels.push(if l < 0.0 { None } else { Some(l as u32) });
    }
    Ok((b.build(), Clustering::new(labels)))
}

fn metrics(args: &[String]) -> Result<(), String> {
    let a = PathBuf::from(args.first().ok_or("metrics: missing <a.csv>")?);
    let b = PathBuf::from(args.get(1).ok_or("metrics: missing <b.csv>")?);
    let (_, ca) = load_labeled(&a)?;
    let (_, cb) = load_labeled(&b)?;
    if ca.len() != cb.len() {
        return Err(format!("label counts differ: {} vs {}", ca.len(), cb.len()));
    }
    for policy in [NoisePolicy::SingleCluster, NoisePolicy::Singletons] {
        println!(
            "{policy:?}: RI={:.6} ARI={:.6} NMI={:.6}",
            rand_index(&ca, &cb, policy),
            adjusted_rand_index(&ca, &cb, policy),
            normalized_mutual_info(&ca, &cb, policy),
        );
    }
    Ok(())
}

fn plot(args: &[String]) -> Result<(), String> {
    let input = PathBuf::from(args.first().ok_or("plot: missing <labeled.csv>")?);
    let output = PathBuf::from(args.get(1).ok_or("plot: missing <out.svg>")?);
    let (data, clustering) = load_labeled(&input)?;
    rp_dbscan::plot::ScatterPlot::new(
        &data,
        &clustering,
        &format!(
            "{} — {} clusters, {} noise",
            input
                .file_name()
                .map(|f| f.to_string_lossy())
                .unwrap_or_default(),
            clustering.num_clusters(),
            clustering.noise_count()
        ),
    )
    .save(&output, 640.0, 560.0)
    .map_err(|e| e.to_string())?;
    println!("wrote {}", output.display());
    Ok(())
}
