//! # rp-dbscan
//!
//! A from-scratch Rust reproduction of **RP-DBSCAN** (Song & Lee, SIGMOD
//! 2018): a superfast parallel DBSCAN built on *pseudo random
//! partitioning* of grid cells and a broadcast *two-level cell
//! dictionary*, plus every baseline and substrate its evaluation needs.
//!
//! ## Quick start
//!
//! ```
//! use rp_dbscan::prelude::*;
//!
//! // Generate a small two-moons data set.
//! let data = rp_dbscan::data::synth::moons(SynthConfig::new(2000), 0.05);
//!
//! // Cluster it with RP-DBSCAN on a simulated 8-worker cluster.
//! let params = RpDbscanParams::new(0.15, 5).with_partitions(8);
//! let engine = Engine::new(8);
//! let out = RpDbscan::new(params).unwrap().run(&data, &engine).unwrap();
//! assert_eq!(out.clustering.num_clusters(), 2);
//! ```
//!
//! ## Crate map
//!
//! * [`core`] — the RP-DBSCAN algorithm (phases I–III).
//! * [`grid`] — cells, sub-cells, the two-level cell dictionary and
//!   `(ε,ρ)`-region queries.
//! * [`engine`] — the mini-MapReduce execution engine (the Spark
//!   substitute).
//! * [`baselines`] — exact DBSCAN, ESP-/RBP-/CBP-/SPARK-DBSCAN,
//!   NG-DBSCAN.
//! * [`stream`] — incremental micro-batch clustering over long-lived
//!   state (insert/remove batches, dirty-region repair, epoch snapshots).
//! * [`serve`] — sharded read-path serving layer (point lookups, exact
//!   Phase III classification of new coordinates, epoch hot-swap).
//! * [`density`] — pluggable Phase II density backends: the exact grid
//!   plus mutual-kNN and sampled-core approximations for high
//!   dimensions.
//! * [`store`] — out-of-core column store: paged SoA files, a
//!   byte-budgeted buffer pool, and spill files for the memory-bounded
//!   merge.
//! * [`data`] — synthetic workload generators and IO.
//! * [`metrics`] — Rand index / ARI / NMI.
//! * [`geom`] — points, boxes, kd-trees.

#![forbid(unsafe_code)]

pub use rpdbscan_baselines as baselines;
pub use rpdbscan_core as core;
pub use rpdbscan_data as data;
pub use rpdbscan_density as density;
pub use rpdbscan_engine as engine;
pub use rpdbscan_geom as geom;
pub use rpdbscan_grid as grid;
pub use rpdbscan_metrics as metrics;
pub use rpdbscan_plot as plot;
pub use rpdbscan_serve as serve;
pub use rpdbscan_store as store;
pub use rpdbscan_stream as stream;

/// The most commonly used items in one import.
pub mod prelude {
    pub use rpdbscan_baselines::{
        exact_dbscan, NgDbscan, NgParams, RegionDbscan, RegionParams, SplitStrategy,
    };
    pub use rpdbscan_core::{DensityBackendKind, OutOfCoreConfig, RpDbscan, RpDbscanParams};
    pub use rpdbscan_data::synth;
    pub use rpdbscan_data::SynthConfig;
    pub use rpdbscan_density::{backend_for, DensityBackend, DensityOutput, DensityStats};
    pub use rpdbscan_engine::{
        ChunkedSteal, CostModel, Engine, Fifo, Lpt, RetryPolicy, Scheduler, StageError, TaskCtx,
        TaskError,
    };
    pub use rpdbscan_geom::{Dataset, DatasetBuilder, PointId};
    pub use rpdbscan_grid::GridSpec;
    pub use rpdbscan_metrics::{rand_index, Clustering, NoisePolicy};
    pub use rpdbscan_serve::{
        Classification, IndexSlot, Request, Response, ServeError, Server, ServerConfig,
        ServingIndex,
    };
    pub use rpdbscan_store::{BufferPool, ColumnStore, StoreError, StoreWriter};
    pub use rpdbscan_stream::{SlidingWindow, StreamPointId, StreamingRpDbscan};
}
